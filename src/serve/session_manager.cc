#include "serve/session_manager.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>
#include <utility>

#include "common/clock.h"
#include "common/file_io.h"
#include "common/logging.h"
#include "rl/policy.h"

namespace atena {

uint64_t ActingStreamSeed(uint64_t session_seed) {
  // Any fixed non-zero salt works: SplitMix64 seeding decorrelates the
  // resulting stream from the environment's (seeded with the raw value).
  return session_seed ^ 0xA3EC4155D1E5ULL;
}

const char* RetireReasonName(RetireReason reason) {
  switch (reason) {
    case RetireReason::kCompleted:
      return "completed";
    case RetireReason::kQuarantined:
      return "quarantined";
    case RetireReason::kDeadlineExceeded:
      return "deadline_exceeded";
    case RetireReason::kHardStopped:
      return "hard_stopped";
  }
  return "unknown";
}

const char* DegradeStageName(DegradeStage stage) {
  switch (stage) {
    case DegradeStage::kNormal:
      return "normal";
    case DegradeStage::kNoDiversity:
      return "no_diversity";
    case DegradeStage::kGreedy:
      return "greedy";
  }
  return "unknown";
}

namespace {

int EffectiveMaxSteps(const SessionConfig& config, const EnvConfig& env) {
  return config.max_steps > 0 ? config.max_steps : env.episode_length;
}

ServedStep RecordStep(const StepOutcome& out, const EdaEnvironment& env) {
  return ServedStep{out.op, out.valid, out.reward,
                    DisplayVectorKey(env.current_display(),
                                     env.config().stats_row_cap)};
}

/// First non-finite element of `values`, or -1 when all are finite.
int FirstNonFinite(const std::vector<double>& values) {
  for (size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) return static_cast<int>(i);
  }
  return -1;
}

/// The journal snapshot's canonical flattening of ServeStats. Capture and
/// restore share the field table so they can never drift apart.
std::vector<int64_t*> StatsFields(ServeStats* stats) {
  return {&stats->admitted,
          &stats->completed,
          &stats->quarantined,
          &stats->shed,
          &stats->deadline_retired,
          &stats->hard_stopped,
          &stats->degrade_transitions,
          &stats->degraded_steps,
          &stats->degraded_greedy_steps,
          &stats->reload_successes,
          &stats->reload_failures,
          &stats->notebooks_registered};
}

std::vector<int64_t> FlattenStats(const ServeStats& stats) {
  std::vector<int64_t> out;
  for (int64_t* field : StatsFields(const_cast<ServeStats*>(&stats))) {
    out.push_back(*field);
  }
  return out;
}

void RestoreStats(const std::vector<int64_t>& values, ServeStats* stats) {
  std::vector<int64_t*> fields = StatsFields(stats);
  const size_t n = std::min(values.size(), fields.size());
  for (size_t i = 0; i < n; ++i) *fields[i] = values[i];
}

}  // namespace

SessionManager::SessionManager(std::shared_ptr<const PolicySnapshot> snapshot,
                               ServeOptions options)
    : snapshot_(std::move(snapshot)),
      options_(std::move(options)),
      health_log_(options_.health_log_path) {
  if (options_.cache_capacity > 0) {
    cache_ = std::make_shared<DisplayCache>(DisplayCache::Options{
        .capacity = options_.cache_capacity,
        .shards = options_.cache_shards});
  }
  const int threads =
      options_.num_threads > 0
          ? options_.num_threads
          : ThreadPool::DefaultThreads(std::numeric_limits<int>::max());
  pool_ = std::make_unique<ThreadPool>(threads);
}

SessionManager::~SessionManager() = default;

std::unique_ptr<EdaEnvironment> SessionManager::AcquireEnv(uint64_t seed) {
  if (!env_pool_.empty()) {
    std::unique_ptr<EdaEnvironment> env = std::move(env_pool_.back());
    env_pool_.pop_back();
    // Reseeding the term stream (plus the Reset in Admit) makes a recycled
    // environment observationally identical to a freshly constructed one;
    // the expensive dataset-derived state (distinct-value ratios, encoder
    // layout) depends only on the dataset and carries over untouched.
    env->set_rng_state(Rng(seed).state());
    return env;
  }
  EnvConfig config = snapshot_->options().env;
  config.seed = seed;
  // All sessions share the manager's cache, injected in Admit.
  config.display_cache_enabled = false;
  return std::make_unique<EdaEnvironment>(snapshot_->dataset(), config);
}

Result<uint64_t> SessionManager::Admit(const SessionConfig& config) {
  const int live = static_cast<int>(sessions_.size());
  if (options_.max_sessions > 0) {
    if (live >= options_.max_sessions) {
      ++stats_.shed;
      if (health_log_.enabled()) {
        health_log_.Append("\"type\":\"shed\",\"seed\":" +
                           std::to_string(config.seed) +
                           ",\"live\":" + std::to_string(live) +
                           ",\"detail\":\"at max_sessions\"");
      }
      return Status::ResourceExhausted(
          "admission refused: " + std::to_string(live) +
          " live sessions at max_sessions=" +
          std::to_string(options_.max_sessions));
    }
    const int watermark =
        static_cast<int>(options_.shed_watermark *
                         static_cast<double>(options_.max_sessions));
    if (options_.shed_watermark > 0.0 && options_.step_deadline_nanos > 0 &&
        overloaded_ && live >= watermark) {
      ++stats_.shed;
      if (health_log_.enabled()) {
        health_log_.Append("\"type\":\"shed\",\"seed\":" +
                           std::to_string(config.seed) +
                           ",\"live\":" + std::to_string(live) +
                           ",\"detail\":\"overloaded past watermark\"");
      }
      return Status::ResourceExhausted(
          "load shed: " + std::to_string(live) +
          " live sessions past watermark (" + std::to_string(watermark) +
          " of max_sessions=" + std::to_string(options_.max_sessions) +
          ") while the last tick overran the step deadline");
    }
  }

  // Start the journal before taking the id: the lazy initial compaction
  // snapshots the state *without* this admission, which the admit record
  // below then adds.
  EnsureJournalStarted();
  auto session = BuildSession(config, next_id_++, snapshot_, current_gen_);
  const uint64_t id = session->id;
  sessions_.push_back(std::move(session));
  ++stats_.admitted;
  if (journal_) {
    const int64_t before = journal_->appended_bytes();
    AccountJournalAppend(
        journal_->AppendAdmit(JournalAdmit{id, config.seed, config.max_steps,
                                           config.greedy, current_gen_}),
        before);
    // No barrier here: an admission is transaction *begin*, not commit —
    // nothing externally observable depends on it yet, and prefix
    // semantics guarantee no later tick record can outlive a lost admit.
    // Admission bursts (churn refill) thus share the next barrier's
    // single flush instead of paying one fdatasync each.
  }
  return id;
}

std::unique_ptr<SessionManager::Session> SessionManager::BuildSession(
    const SessionConfig& config, uint64_t id,
    std::shared_ptr<const PolicySnapshot> snapshot, uint32_t gen) {
  auto session = std::make_unique<Session>();
  session->id = id;
  session->config = config;
  session->effective_max_steps =
      EffectiveMaxSteps(config, snapshot->options().env);
  session->env = AcquireEnv(config.seed);
  session->env->SetDisplayCache(cache_);
  if (options_.reward_factory) {
    session->reward = options_.reward_factory();
  }
  session->env->SetRewardSignal(session->reward.get());
  session->act_rng = Rng(ActingStreamSeed(config.seed));
  session->observation = session->env->Reset();
  session->snapshot = std::move(snapshot);
  session->snapshot_gen = gen;
  session->trace.id = id;
  session->trace.seed = config.seed;
  session->trace.steps.reserve(
      static_cast<size_t>(session->effective_max_steps));
  return session;
}

void SessionManager::RegisterNotebook(const Session& session) {
  if (!options_.notebook_store) return;
  const int64_t notebook_id = options_.notebook_store->Register(
      session.id, session.config.seed, session.env->display_vectors());
  if (notebook_id < 0) return;
  ++stats_.notebooks_registered;
  LogSessionEvent("notebook_registered", session,
                  "\"notebook\":" + std::to_string(notebook_id));
}

void SessionManager::Retire(size_t index, RetireReason reason, Status status,
                            bool env_healthy) {
  Session& s = *sessions_[index];
  // A healthy environment's in-progress notebook joins the corpus (the
  // store drops sequences too short to be a notebook); a quarantined
  // environment may be mid-mutation and its history is not trusted.
  if (env_healthy) RegisterNotebook(s);
  SessionOutcome outcome;
  outcome.reason = reason;
  outcome.status = std::move(status);
  outcome.final_stage = s.stage;
  outcome.degraded_steps = s.degraded_steps;
  outcome.trace = std::move(s.trace);
  completed_.push_back(std::move(outcome));
  switch (reason) {
    case RetireReason::kCompleted:
      ++stats_.completed;
      break;
    case RetireReason::kQuarantined:
      ++stats_.quarantined;
      break;
    case RetireReason::kDeadlineExceeded:
      ++stats_.deadline_retired;
      break;
    case RetireReason::kHardStopped:
      ++stats_.hard_stopped;
      break;
  }
  if (env_healthy) {
    s.env->SetRewardSignal(nullptr);
    env_pool_.push_back(std::move(s.env));
  }
  // A quarantined environment may have been interrupted mid-mutation; it
  // is discarded with the session rather than pooled.
  sessions_[index].reset();
}

bool SessionManager::EscalateDegrade(size_t index) {
  Session& s = *sessions_[index];
  ++stats_.degrade_transitions;
  switch (s.stage) {
    case DegradeStage::kNormal:
      s.stage = DegradeStage::kNoDiversity;
      if (s.reward) s.reward->SetDegradedMode(true);
      LogSessionEvent("degrade", s, "\"stage\":\"no_diversity\"");
      return false;
    case DegradeStage::kNoDiversity:
      s.stage = DegradeStage::kGreedy;
      LogSessionEvent("degrade", s, "\"stage\":\"greedy\"");
      return false;
    case DegradeStage::kGreedy:
      break;
  }
  // Past the last stage: the session cannot be served within budget even
  // fully degraded — retire it with its partial notebook.
  LogSessionEvent("deadline_retire", s, std::string("\"stage\":\"") +
                                            DegradeStageName(s.stage) + "\"");
  Retire(index, RetireReason::kDeadlineExceeded,
         Status::ResourceExhausted(
             "step deadline (" + std::to_string(options_.step_deadline_nanos) +
             "ns) still exceeded at the last degradation stage"),
         /*env_healthy=*/true);
  return true;
}

void SessionManager::LogSessionEvent(const char* type, const Session& session,
                                     const std::string& extra) {
  if (!health_log_.enabled()) return;
  std::string body = "\"type\":" + JsonString(type) +
                     ",\"session\":" + std::to_string(session.id) +
                     ",\"seed\":" + std::to_string(session.config.seed) +
                     ",\"step\":" + std::to_string(session.steps_done);
  if (!extra.empty()) {
    body += ",";
    body += extra;
  }
  health_log_.Append(body);
}

int SessionManager::Tick() {
  const int live = static_cast<int>(sessions_.size());
  if (live == 0) return 0;
  EnsureJournalStarted();
  // The group commit (DESIGN.md §15): every session's committed step this
  // tick lands in ONE journal record — one append per tick, not per
  // session — assembled during serial commit and appended after it. The
  // fdatasync is deferred to the next durability barrier (SyncJournal),
  // so consecutive ticks share a single flush.
  const bool journaling = journal_ != nullptr;
  if (journaling) {
    tick_builder_.Clear();
    // Pre-step stream states: the delta base for this tick's entries
    // (nothing consumes session randomness between here and the step).
    env_rng_before_.resize(static_cast<size_t>(live));
    act_rng_before_.resize(static_cast<size_t>(live));
    for (int i = 0; i < live; ++i) {
      const Session& s = *sessions_[static_cast<size_t>(i)];
      env_rng_before_[static_cast<size_t>(i)] = s.env->rng_state();
      act_rng_before_[static_cast<size_t>(i)] = s.act_rng.state();
    }
  }

  // 1. Serial act: one batched forward per pinned-snapshot group (a single
  // group except in the ticks spanning a hot reload), each row drawing
  // from its session's private stream (or none when greedy — by config or
  // by degradation stage).
  std::vector<PolicyStep> acts(static_cast<size_t>(live));
  std::vector<const PolicySnapshot*> group_keys;
  std::vector<std::vector<int>> groups;
  for (int i = 0; i < live; ++i) {
    const PolicySnapshot* key = sessions_[static_cast<size_t>(i)]->snapshot.get();
    size_t g = 0;
    while (g < group_keys.size() && group_keys[g] != key) ++g;
    if (g == group_keys.size()) {
      group_keys.push_back(key);
      groups.emplace_back();
    }
    groups[g].push_back(i);
  }
  for (const std::vector<int>& members : groups) {
    Session& first = *sessions_[static_cast<size_t>(members.front())];
    TwofoldPolicy* policy = first.snapshot->policy();
    if (options_.batched_acting) {
      // Pad the batch up to the forward pass's 4-row register-tile width
      // so a draining runtime (1–3 live sessions) keeps the tiled GEMM
      // instead of falling back to per-row dot products. GEMM rows are
      // independent, and a padded row carries a null Rng, so live rows'
      // results are bit-identical with or without padding; padded outputs
      // are dropped.
      constexpr int kTileRows = 4;
      const int count = static_cast<int>(members.size());
      const int rows = std::max(count, kTileRows);
      obs_batch_.Resize(rows, first.snapshot->observation_dim());
      rngs_.assign(static_cast<size_t>(rows), nullptr);
      for (int r = 0; r < count; ++r) {
        Session& s = *sessions_[static_cast<size_t>(members[static_cast<size_t>(r)])];
        std::copy(s.observation.begin(), s.observation.end(),
                  obs_batch_.RowPtr(r));
        if (!s.config.greedy && s.stage < DegradeStage::kGreedy) {
          rngs_[static_cast<size_t>(r)] = &s.act_rng;
        }
      }
      for (int r = count; r < rows; ++r) {
        std::copy(obs_batch_.RowPtr(0),
                  obs_batch_.RowPtr(0) + obs_batch_.cols(),
                  obs_batch_.RowPtr(r));
      }
      std::vector<PolicyStep> group_acts = policy->ActBatch(obs_batch_, rngs_);
      for (int r = 0; r < count; ++r) {
        acts[static_cast<size_t>(members[static_cast<size_t>(r)])] =
            std::move(group_acts[static_cast<size_t>(r)]);
      }
    } else {
      // Baseline path: one forward per session (what bench_serve compares
      // the batched path against).
      for (int idx : members) {
        Session& s = *sessions_[static_cast<size_t>(idx)];
        const bool greedy =
            s.config.greedy || s.stage >= DegradeStage::kGreedy;
        acts[static_cast<size_t>(idx)] =
            greedy ? policy->ActGreedy(s.observation)
                   : policy->Act(s.observation, &s.act_rng);
      }
    }
  }

  // Pre-step screening: a policy that produced non-finite outputs for a
  // row must not drive that session's environment at all. The session is
  // quarantined; its environment was never touched this tick.
  slots_.assign(static_cast<size_t>(live), StepSlot{});
  for (int i = 0; i < live; ++i) {
    const PolicyStep& act = acts[static_cast<size_t>(i)];
    if (!std::isfinite(act.log_prob) || !std::isfinite(act.value)) {
      slots_[static_cast<size_t>(i)].status = Status::Internal(
          "non-finite policy output: log_prob=" +
          std::to_string(act.log_prob) +
          " value=" + std::to_string(act.value));
    }
  }

  // 2. Parallel step: index-addressed slots; a worker touches only its
  // session's environment plus the internally synchronized cache. Each
  // step is timed against the monotonic deadline clock; failures land in
  // the slot's Status and never escape the session's fault domain.
  pool_->ParallelFor(live, [&](int i) {
    StepSlot& slot = slots_[static_cast<size_t>(i)];
    if (!slot.status.ok()) return;  // screened out before stepping
    Session& s = *sessions_[static_cast<size_t>(i)];
    if (options_.fault_injection.env_step) {
      Status injected = options_.fault_injection.env_step(s.id, s.steps_done);
      if (!injected.ok()) {
        slot.status = std::move(injected);
        return;
      }
    }
    const int64_t start = MonotonicNanos();
    Result<StepOutcome> stepped =
        TryApplyAction(s.env.get(), acts[static_cast<size_t>(i)].action);
    slot.duration_nanos = MonotonicNanos() - start;
    if (options_.fault_injection.step_duration_nanos) {
      slot.duration_nanos =
          options_.fault_injection.step_duration_nanos(s.id, s.steps_done);
    }
    if (!stepped.ok()) {
      slot.status = stepped.status();
      return;
    }
    slot.outcome = std::move(stepped).value();
    // Screen the step's products: a non-finite reward or observation
    // element is a poisoned session that must not reach the next batch.
    if (!std::isfinite(slot.outcome.reward)) {
      slot.status = Status::Internal("non-finite reward: " +
                                     std::to_string(slot.outcome.reward));
      return;
    }
    const int bad = FirstNonFinite(slot.outcome.observation);
    if (bad >= 0) {
      slot.status = Status::Internal("non-finite observation element " +
                                     std::to_string(bad));
      return;
    }
    slot.executed = true;
  });

  // 3. Serial commit in admission order: quarantine, record, walk the
  // degradation ladder, retire, reset.
  int executed_steps = 0;
  int64_t duration_sum = 0;
  for (int i = 0; i < live; ++i) {
    Session& s = *sessions_[static_cast<size_t>(i)];
    StepSlot& slot = slots_[static_cast<size_t>(i)];
    const uint64_t sid = s.id;
    if (!slot.status.ok()) {
      LogSessionEvent(
          "quarantine", s,
          "\"code\":" + JsonString(StatusCodeName(slot.status.code())) +
              ",\"detail\":" + JsonString(slot.status.message()));
      Retire(static_cast<size_t>(i), RetireReason::kQuarantined,
             std::move(slot.status), /*env_healthy=*/false);
      if (journaling) tick_builder_.AddQuarantine(sid);
      continue;
    }
    s.trace.steps.push_back(RecordStep(slot.outcome, *s.env));
    s.trace.total_reward += slot.outcome.reward;
    ++s.steps_done;
    ++steps_served_;
    ++executed_steps;
    duration_sum += slot.duration_nanos;
    if (s.stage >= DegradeStage::kNoDiversity) {
      ++s.degraded_steps;
      ++stats_.degraded_steps;
      if (s.stage >= DegradeStage::kGreedy) ++stats_.degraded_greedy_steps;
    }
    // Post-commit stream states, captured before any retirement below can
    // destroy the session. The episode-boundary Reset further down
    // consumes no randomness, so capturing here is already exact.
    // Delta-encoded against the pre-step base — a few bytes per stream
    // instead of four 20-digit words.
    JournalRng env_jr, act_jr;
    if (journaling) {
      env_jr = MakeJournalRng(env_rng_before_[static_cast<size_t>(i)],
                              s.env->rng_state());
      act_jr = MakeJournalRng(act_rng_before_[static_cast<size_t>(i)],
                              s.act_rng.state());
    }
    const ServedStep& recorded = s.trace.steps.back();
    if (s.steps_done >= s.effective_max_steps) {
      if (journaling) {
        tick_builder_.AddStep(sid, JournalTickEntry::kCompleted,
                              static_cast<int>(s.stage), env_jr, act_jr,
                              recorded.op, recorded.valid, recorded.reward,
                              recorded.display_signature);
      }
      Retire(static_cast<size_t>(i), RetireReason::kCompleted, Status::OK(),
             /*env_healthy=*/true);
      continue;
    }
    if (options_.step_deadline_nanos > 0 &&
        slot.duration_nanos > options_.step_deadline_nanos) {
      // The overrunning step stays in the notebook; the *next* step runs
      // one stage further down the ladder (or not at all).
      if (EscalateDegrade(static_cast<size_t>(i))) {
        if (journaling) {
          tick_builder_.AddStep(sid, JournalTickEntry::kDeadlineRetired,
                                static_cast<int>(DegradeStage::kGreedy),
                                env_jr, act_jr, recorded.op, recorded.valid,
                                recorded.reward, recorded.display_signature);
        }
        continue;
      }
    }
    if (journaling) {
      tick_builder_.AddStep(sid, JournalTickEntry::kLive,
                            static_cast<int>(s.stage), env_jr, act_jr,
                            recorded.op, recorded.valid, recorded.reward,
                            recorded.display_signature);
    }
    if (slot.outcome.done) {
      // Episode boundary inside a longer session: the finished notebook
      // joins the corpus, then the next one starts. (A session completing
      // its step budget was retired above — registered there, not twice.)
      RegisterNotebook(s);
      s.observation = s.env->Reset();
    } else {
      s.observation = std::move(slot.outcome.observation);
    }
  }
  sessions_.erase(std::remove(sessions_.begin(), sessions_.end(), nullptr),
                  sessions_.end());
  overloaded_ = options_.step_deadline_nanos > 0 && executed_steps > 0 &&
                duration_sum / executed_steps > options_.step_deadline_nanos;
  if (journaling && journal_) {
    const int64_t before = journal_->appended_bytes();
    AccountJournalAppend(
        journal_->AppendTickBuilt(tick_builder_, overloaded_),
        before);
    MaybeAutoCompact();
  }
  return executed_steps;
}

void SessionManager::Drain() {
  while (!sessions_.empty()) Tick();
}

int SessionManager::HardStop() {
  if (!sessions_.empty()) EnsureJournalStarted();
  std::vector<uint64_t> stopped_ids;
  stopped_ids.reserve(sessions_.size());
  int stopped = 0;
  for (size_t i = 0; i < sessions_.size(); ++i) {
    if (!sessions_[i]) continue;
    stopped_ids.push_back(sessions_[i]->id);
    LogSessionEvent("hard_stop", *sessions_[i], "");
    Retire(i, RetireReason::kHardStopped, Status::OK(), /*env_healthy=*/true);
    ++stopped;
  }
  sessions_.clear();
  if (journal_ && !stopped_ids.empty()) {
    const int64_t before = journal_->appended_bytes();
    AccountJournalAppend(journal_->AppendStop(stopped_ids), before);
    SyncJournal();
  }
  return stopped;
}

Status SessionManager::ReloadSnapshot(const std::string& path) {
  Status last;
  for (int attempt = 0; attempt <= options_.reload_retries; ++attempt) {
    if (attempt > 0) {
      const int64_t backoff = options_.reload_backoff_nanos << (attempt - 1);
      if (options_.reload_sleep) {
        options_.reload_sleep(backoff);
      } else {
        SleepForNanos(backoff);
      }
    }
    // The new snapshot is built against the serving dataset and options,
    // so LoadPolicySnapshot's architecture validation guarantees every
    // accepted file is observation/action-compatible with live sessions.
    Result<std::shared_ptr<PolicySnapshot>> loaded = LoadPolicySnapshot(
        snapshot_->dataset(), snapshot_->options(), path);
    if (loaded.ok()) {
      // Journal start must capture the pre-reload state; the reload record
      // then defines the new generation.
      EnsureJournalStarted();
      snapshot_ = std::move(loaded).value();
      generation_paths_.push_back(path);
      current_gen_ = static_cast<uint32_t>(generation_paths_.size() - 1);
      ++stats_.reload_successes;
      if (health_log_.enabled()) {
        health_log_.Append("\"type\":\"reload_ok\",\"path\":" +
                           JsonString(path) +
                           ",\"attempt\":" + std::to_string(attempt));
      }
      if (journal_) {
        const int64_t before = journal_->appended_bytes();
        AccountJournalAppend(
            journal_->AppendReload(JournalReload{current_gen_, path}), before);
        SyncJournal();
      }
      return Status::OK();
    }
    last = loaded.status();
    if (health_log_.enabled()) {
      health_log_.Append(
          "\"type\":\"reload_fail\",\"path\":" + JsonString(path) +
          ",\"attempt\":" + std::to_string(attempt) +
          ",\"code\":" + JsonString(StatusCodeName(last.code())) +
          ",\"detail\":" + JsonString(last.message()));
    }
  }
  ++stats_.reload_failures;
  if (health_log_.enabled()) {
    health_log_.Append("\"type\":\"reload_giveup\",\"path\":" +
                       JsonString(path) + ",\"attempts\":" +
                       std::to_string(options_.reload_retries + 1));
  }
  return last;
}

JournalMeta SessionManager::BuildJournalMeta() const {
  const EnvConfig& env = snapshot_->options().env;
  JournalMeta meta;
  meta.dataset_id = snapshot_->dataset().info.id;
  meta.observation_dim = snapshot_->observation_dim();
  meta.episode_length = env.episode_length;
  meta.num_term_bins = env.num_term_bins;
  return meta;
}

Status SessionManager::VerifyJournalMeta(const JournalMeta& meta) const {
  const JournalMeta want = BuildJournalMeta();
  if (meta.version != want.version) {
    return Status::InvalidArgument("unsupported journal version " +
                                   std::to_string(meta.version));
  }
  if (meta.dataset_id != want.dataset_id ||
      meta.observation_dim != want.observation_dim ||
      meta.episode_length != want.episode_length ||
      meta.num_term_bins != want.num_term_bins) {
    return Status::InvalidArgument(
        "journal was written under a different serving configuration: "
        "journal has dataset '" +
        meta.dataset_id + "', obs_dim " +
        std::to_string(meta.observation_dim) + ", episode_length " +
        std::to_string(meta.episode_length) + ", term_bins " +
        std::to_string(meta.num_term_bins) + "; this manager serves '" +
        want.dataset_id + "', obs_dim " +
        std::to_string(want.observation_dim) + ", episode_length " +
        std::to_string(want.episode_length) + ", term_bins " +
        std::to_string(want.num_term_bins));
  }
  return Status::OK();
}

JournalSnapshot SessionManager::CaptureJournalSnapshot(
    int64_t notebook_seq) const {
  JournalSnapshot snap;
  snap.next_id = next_id_;
  snap.steps_served = steps_served_;
  snap.overloaded = overloaded_;
  snap.stats = FlattenStats(stats_);
  snap.generation_paths = generation_paths_;
  snap.current_gen = current_gen_;
  snap.notebook_seq = notebook_seq;
  snap.sessions.reserve(sessions_.size());
  for (const std::unique_ptr<Session>& owned : sessions_) {
    if (!owned) continue;
    const Session& s = *owned;
    JournalSessionState state;
    state.id = s.id;
    state.seed = s.config.seed;
    state.max_steps = s.config.max_steps;
    state.greedy = s.config.greedy;
    state.gen = s.snapshot_gen;
    state.steps_done = s.steps_done;
    state.stage = static_cast<int>(s.stage);
    state.degraded_steps = s.degraded_steps;
    state.episode_steps = s.env->step_count();
    state.total_reward = s.trace.total_reward;
    state.env_rng = s.env->rng_state();
    state.act_rng = s.act_rng.state();
    state.trace.reserve(s.trace.steps.size());
    for (const ServedStep& step : s.trace.steps) {
      state.trace.push_back(JournalStep{step.op, step.valid, step.reward,
                                        step.display_signature});
    }
    snap.sessions.push_back(std::move(state));
  }
  return snap;
}

void SessionManager::EnsureJournalStarted() {
  if (journal_started_ || recovering_ || options_.journal_path.empty()) {
    return;
  }
  // The initial compaction IS the journal start: it writes header + meta +
  // a snapshot of the current (typically empty) state. Running it lazily —
  // at the first state transition, before that transition mutates anything
  // — means constructing a manager never clobbers a journal that
  // RecoverFromJournal has not read yet.
  Status started = CompactJournal();
  (void)started;  // a failure already marked the journal broken
}

void SessionManager::MarkJournalBroken(Status status) {
  ++stats_.journal_failures;
  ATENA_LOG(kWarning) << "serving journal disabled: " << status;
  if (health_log_.enabled()) {
    health_log_.Append("\"type\":\"journal_fail\",\"detail\":" +
                       JsonString(status.message()));
  }
  // Durability degrades, availability does not: the prefix already on disk
  // stays recoverable, and serving continues unjournaled.
  journal_.reset();
  journal_started_ = true;
}

void SessionManager::AccountJournalAppend(Status status, int64_t bytes_before) {
  if (!journal_) return;
  if (!status.ok()) {
    MarkJournalBroken(std::move(status));
    return;
  }
  ++stats_.journal_appends;
  stats_.journal_bytes += journal_->appended_bytes() - bytes_before;
}

void SessionManager::SyncJournal() {
  if (!journal_ || !journal_->dirty()) return;
  Status synced = journal_->Sync();
  if (!synced.ok()) {
    MarkJournalBroken(std::move(synced));
    return;
  }
  ++stats_.journal_syncs;
}

void SessionManager::MaybeAutoCompact() {
  if (!journal_ || options_.journal_compact_bytes <= 0) return;
  // Compact when the log since the last snapshot outweighs both the
  // configured floor and a multiple of that snapshot's own size — the
  // standard WAL amortization rule (see the ServeOptions fields).
  int64_t threshold = options_.journal_compact_bytes;
  if (options_.journal_compact_snap_factor > 0) {
    threshold = std::max(threshold, options_.journal_compact_snap_factor *
                                        journal_->snapshot_bytes());
  }
  if (journal_->appended_bytes() < threshold) return;
  Status compacted = CompactJournal();
  (void)compacted;  // a failure already marked the journal broken
}

Status SessionManager::CompactJournal() {
  if (options_.journal_path.empty()) {
    return Status::InvalidArgument(
        "CompactJournal: no ServeOptions::journal_path configured");
  }
  if (!journal_) {
    if (journal_started_) {
      return Status::FailedPrecondition(
          "journaling was disabled by an earlier failure");
    }
    journal_ = std::make_unique<SessionJournal>(options_.journal_path);
  }
  // The sidecar goes first: the snapshot record names its sequence number,
  // so the store's bytes must be durable before a snapshot referencing
  // them can exist.
  int64_t sidecar_seq = -1;
  if (options_.notebook_store) {
    sidecar_seq = notebook_seq_ + 1;
    Status saved = options_.notebook_store->Save(
        JournalSidecarPath(options_.journal_path, sidecar_seq));
    if (!saved.ok()) {
      MarkJournalBroken(saved);
      return saved;
    }
  }
  Status reset =
      journal_->Reset(BuildJournalMeta(), CaptureJournalSnapshot(sidecar_seq));
  if (!reset.ok()) {
    MarkJournalBroken(reset);
    return reset;
  }
  journal_started_ = true;
  if (sidecar_seq >= 0) {
    notebook_seq_ = sidecar_seq;
    if (sidecar_seq >= 2) {
      // Keep the last two sidecars: this snapshot's and the one `.prev`
      // references. Older ones are dead; a failed removal leaves a stale
      // file, not corruption.
      std::remove(
          JournalSidecarPath(options_.journal_path, sidecar_seq - 2).c_str());
    }
  }
  ++stats_.journal_compactions;
  if (health_log_.enabled()) {
    health_log_.Append(
        "\"type\":\"journal_compact\",\"seq\":" + std::to_string(sidecar_seq) +
        ",\"sessions\":" + std::to_string(active_sessions()));
  }
  return Status::OK();
}

Status SessionManager::ReplayJournalSnapshot(const JournalSnapshot& snap,
                                             const std::string& sidecar_root,
                                             RecoveryInfo* /*info*/) {
  // Phase 1 — every fallible load, before any state mutation, so the
  // caller can still fall back to `.prev` when this snapshot's sidecar is
  // unreadable (IOError = clean to fall back; InvalidArgument = hard).
  std::optional<NotebookStore> restored_store;
  if (snap.notebook_seq >= 0) {
    if (!options_.notebook_store) {
      return Status::InvalidArgument(
          "journal snapshot references notebook sidecar seq " +
          std::to_string(snap.notebook_seq) +
          " but this manager has no notebook store configured");
    }
    const std::string sidecar =
        JournalSidecarPath(sidecar_root, snap.notebook_seq);
    Result<NotebookStore> loaded = NotebookStore::Load(sidecar);
    if (!loaded.ok()) {
      return Status::IOError("notebook sidecar '" + sidecar +
                             "' unreadable: " + loaded.status().message());
    }
    restored_store.emplace(std::move(loaded).value());
  }
  std::vector<std::shared_ptr<const PolicySnapshot>> gens(
      snap.generation_paths.size());
  gens[0] = snapshot_;
  auto resolve_gen = [&](uint32_t gen) -> Status {
    if (gens[gen]) return Status::OK();
    Result<std::shared_ptr<PolicySnapshot>> loaded = LoadPolicySnapshot(
        snapshot_->dataset(), snapshot_->options(), snap.generation_paths[gen]);
    if (!loaded.ok()) {
      return Status::IOError("recovery cannot load policy generation " +
                             std::to_string(gen) + " from '" +
                             snap.generation_paths[gen] +
                             "': " + loaded.status().message());
    }
    gens[gen] = std::move(loaded).value();
    return Status::OK();
  };
  for (const JournalSessionState& st : snap.sessions) {
    if (st.gen >= gens.size() || st.stage < 0 ||
        st.stage > static_cast<int>(DegradeStage::kGreedy)) {
      return Status::InvalidArgument("journal snapshot session " +
                                     std::to_string(st.id) +
                                     " has out-of-range fields");
    }
    ATENA_RETURN_IF_ERROR(resolve_gen(st.gen));
  }
  ATENA_RETURN_IF_ERROR(resolve_gen(snap.current_gen));

  // Phase 2 — restore. From here on any failure is a hard error (state is
  // partially mutated; the caller must not fall back).
  next_id_ = snap.next_id;
  steps_served_ = snap.steps_served;
  overloaded_ = snap.overloaded;
  RestoreStats(snap.stats, &stats_);
  generation_paths_ = snap.generation_paths;
  current_gen_ = snap.current_gen;
  snapshot_ = gens[current_gen_];
  notebook_seq_ = snap.notebook_seq;
  if (restored_store) {
    // In-place move keeps every component sharing the store pointed at the
    // recovered corpus.
    *options_.notebook_store = std::move(*restored_store);
  }
  for (const JournalSessionState& st : snap.sessions) {
    SessionConfig config;
    config.seed = st.seed;
    config.max_steps = st.max_steps;
    config.greedy = st.greedy;
    auto session = BuildSession(config, st.id, gens[st.gen], st.gen);
    Session& s = *session;
    // Rebuild the environment mid-episode by re-stepping the in-progress
    // episode's recorded operations. The reward signal is detached for the
    // rebuild: recorded rewards are already in the trace, recomputing them
    // would need the exact degraded-mode history, and the signal carries
    // no state that feeds future computes (only the env's display history
    // does, and the re-stepping rebuilds exactly that).
    s.env->SetRewardSignal(nullptr);
    const size_t trace_len = st.trace.size();
    if (static_cast<size_t>(st.episode_steps) > trace_len) {
      return Status::InvalidArgument("journal snapshot session " +
                                     std::to_string(st.id) +
                                     " episode_steps exceeds its trace");
    }
    const size_t begin = trace_len - static_cast<size_t>(st.episode_steps);
    for (size_t i = begin; i < trace_len; ++i) {
      const JournalStep& step = st.trace[i];
      Result<StepOutcome> stepped = s.env->TryStepOperation(step.op);
      if (!stepped.ok()) {
        return Status::InvalidArgument(
            "journal snapshot does not replay against this dataset: "
            "session " +
            std::to_string(st.id) + " trace step " + std::to_string(i) +
            ": " + stepped.status().message());
      }
      StepOutcome outcome = std::move(stepped).value();
      const uint64_t signature = DisplayVectorKey(
          s.env->current_display(), s.env->config().stats_row_cap);
      if (outcome.valid != step.valid ||
          signature != step.display_signature) {
        return Status::InvalidArgument(
            "journal snapshot replay mismatch for session " +
            std::to_string(st.id) + " at trace step " + std::to_string(i) +
            " — the journal was written under a different dataset or "
            "environment configuration");
      }
      if (i + 1 == trace_len) s.observation = std::move(outcome.observation);
    }
    s.env->SetRewardSignal(s.reward.get());
    s.env->set_rng_state(st.env_rng);
    s.act_rng.set_state(st.act_rng);
    s.steps_done = st.steps_done;
    s.stage = static_cast<DegradeStage>(st.stage);
    s.degraded_steps = st.degraded_steps;
    if (s.stage >= DegradeStage::kNoDiversity && s.reward) {
      s.reward->SetDegradedMode(true);
    }
    for (const JournalStep& step : st.trace) {
      s.trace.steps.push_back(ServedStep{step.op, step.valid, step.reward,
                                         step.display_signature});
    }
    s.trace.total_reward = st.total_reward;
    sessions_.push_back(std::move(session));
  }
  return Status::OK();
}

Status SessionManager::ReplayJournalRecord(const JournalRecord& record,
                                           RecoveryInfo* info) {
  switch (record.kind) {
    case JournalRecord::Kind::kAdmit: {
      const JournalAdmit& admit = record.admit;
      if (admit.gen >= generation_paths_.size()) {
        return Status::InvalidArgument(
            "admit record pins unknown policy generation " +
            std::to_string(admit.gen));
      }
      std::shared_ptr<const PolicySnapshot> pinned;
      if (admit.gen == current_gen_) {
        pinned = snapshot_;
      } else {
        // Admitted on an older generation than the final one (reloads and
        // admissions interleaved before the crash).
        Result<std::shared_ptr<PolicySnapshot>> loaded =
            LoadPolicySnapshot(snapshot_->dataset(), snapshot_->options(),
                               generation_paths_[admit.gen]);
        if (!loaded.ok()) {
          return Status::IOError("recovery cannot load policy generation " +
                                 std::to_string(admit.gen) + " from '" +
                                 generation_paths_[admit.gen] +
                                 "': " + loaded.status().message());
        }
        pinned = std::move(loaded).value();
      }
      SessionConfig config;
      config.seed = admit.seed;
      config.max_steps = admit.max_steps;
      config.greedy = admit.greedy;
      sessions_.push_back(
          BuildSession(config, admit.id, std::move(pinned), admit.gen));
      if (admit.id >= next_id_) next_id_ = admit.id + 1;
      ++stats_.admitted;
      return Status::OK();
    }
    case JournalRecord::Kind::kReload: {
      const JournalReload& reload = record.reload;
      if (reload.gen != generation_paths_.size()) {
        return Status::InvalidArgument(
            "reload record defines generation " + std::to_string(reload.gen) +
            " out of sequence (expected " +
            std::to_string(generation_paths_.size()) + ")");
      }
      Result<std::shared_ptr<PolicySnapshot>> loaded = LoadPolicySnapshot(
          snapshot_->dataset(), snapshot_->options(), reload.path);
      if (!loaded.ok()) {
        return Status::IOError("recovery cannot reload policy generation " +
                               std::to_string(reload.gen) + " from '" +
                               reload.path +
                               "': " + loaded.status().message());
      }
      generation_paths_.push_back(reload.path);
      current_gen_ = reload.gen;
      snapshot_ = std::move(loaded).value();
      ++stats_.reload_successes;
      return Status::OK();
    }
    case JournalRecord::Kind::kTick:
      return ReplayJournalTick(record.tick, info);
    case JournalRecord::Kind::kStop: {
      for (uint64_t id : record.stop_ids) {
        size_t index = sessions_.size();
        for (size_t i = 0; i < sessions_.size(); ++i) {
          if (sessions_[i] && sessions_[i]->id == id) {
            index = i;
            break;
          }
        }
        if (index == sessions_.size()) {
          return Status::InvalidArgument(
              "stop record references unknown session " + std::to_string(id));
        }
        Retire(index, RetireReason::kHardStopped, Status::OK(),
               /*env_healthy=*/true);
      }
      sessions_.erase(
          std::remove(sessions_.begin(), sessions_.end(), nullptr),
          sessions_.end());
      return Status::OK();
    }
  }
  return Status::Internal("unhandled journal record kind");
}

Status SessionManager::ReplayJournalTick(const JournalTick& tick,
                                         RecoveryInfo* info) {
  for (const JournalTickEntry& entry : tick.entries) {
    size_t index = sessions_.size();
    for (size_t i = 0; i < sessions_.size(); ++i) {
      if (sessions_[i] && sessions_[i]->id == entry.id) {
        index = i;
        break;
      }
    }
    if (index == sessions_.size()) {
      return Status::InvalidArgument(
          "tick record references unknown session " +
          std::to_string(entry.id));
    }
    Session& s = *sessions_[index];
    if (entry.kind == JournalTickEntry::Kind::kQuarantine) {
      // The fault's original Status text is not journaled (only that the
      // quarantine happened); the re-delivered outcome says so.
      Retire(index, RetireReason::kQuarantined,
             Status::Internal(
                 "quarantined before the crash (original fault detail "
                 "not journaled)"),
             /*env_healthy=*/false);
      continue;
    }
    if (entry.stage_after < static_cast<int>(s.stage) ||
        entry.stage_after > static_cast<int>(DegradeStage::kGreedy)) {
      return Status::InvalidArgument("tick record stage out of range");
    }
    Result<StepOutcome> stepped = s.env->TryStepOperation(entry.step.op);
    if (!stepped.ok()) {
      return Status::InvalidArgument(
          "journal does not replay against this dataset/snapshot: session " +
          std::to_string(entry.id) + " step " + std::to_string(s.steps_done) +
          ": " + stepped.status().message());
    }
    StepOutcome outcome = std::move(stepped).value();
    const ServedStep recorded = RecordStep(outcome, *s.env);
    // The replay-verification invariant: the recomputed step must match
    // the journaled one bit-for-bit, or this journal belongs to a
    // different dataset, policy snapshot or reward configuration.
    if (recorded.valid != entry.step.valid ||
        recorded.reward != entry.step.reward ||
        recorded.display_signature != entry.step.display_signature) {
      return Status::InvalidArgument(
          "journal replay mismatch for session " + std::to_string(entry.id) +
          " at step " + std::to_string(s.steps_done) +
          " — the journal was written under a different dataset, policy "
          "snapshot or reward configuration");
    }
    s.trace.steps.push_back(recorded);
    s.trace.total_reward += outcome.reward;
    ++s.steps_done;
    ++steps_served_;
    ++info->steps_replayed;
    // Degraded-step accounting uses the stage the step *ran* at (this
    // tick's escalation lands after the step committed, as in Tick).
    if (s.stage >= DegradeStage::kNoDiversity) {
      ++s.degraded_steps;
      ++stats_.degraded_steps;
      if (s.stage >= DegradeStage::kGreedy) ++stats_.degraded_greedy_steps;
    }
    const int pre_stage = static_cast<int>(s.stage);
    int transitions = entry.stage_after - pre_stage;
    if (entry.end == JournalTickEntry::kDeadlineRetired) ++transitions;
    stats_.degrade_transitions += transitions;
    if (entry.stage_after >= static_cast<int>(DegradeStage::kNoDiversity) &&
        pre_stage < static_cast<int>(DegradeStage::kNoDiversity) &&
        s.reward) {
      s.reward->SetDegradedMode(true);
    }
    s.stage = static_cast<DegradeStage>(entry.stage_after);
    if (entry.end == JournalTickEntry::kCompleted) {
      Retire(index, RetireReason::kCompleted, Status::OK(),
             /*env_healthy=*/true);
      continue;
    }
    if (entry.end == JournalTickEntry::kDeadlineRetired) {
      Retire(index, RetireReason::kDeadlineExceeded,
             Status::ResourceExhausted(
                 "step deadline (" +
                 std::to_string(options_.step_deadline_nanos) +
                 "ns) still exceeded at the last degradation stage"),
             /*env_healthy=*/true);
      continue;
    }
    if (outcome.done) {
      RegisterNotebook(s);
      s.observation = s.env->Reset();
    } else {
      s.observation = std::move(outcome.observation);
    }
    // The recorded post-commit stream states (the replayed operation
    // itself consumed no randomness, so the live states are still the
    // recorded deltas' pre-step base).
    s.env->set_rng_state(
        MaterializeJournalRng(entry.env_rng, s.env->rng_state()));
    s.act_rng.set_state(
        MaterializeJournalRng(entry.act_rng, s.act_rng.state()));
  }
  sessions_.erase(std::remove(sessions_.begin(), sessions_.end(), nullptr),
                  sessions_.end());
  overloaded_ = tick.overloaded;
  ++info->ticks_replayed;
  return Status::OK();
}

Status SessionManager::RecoverFromJournal(const std::string& path,
                                          RecoveryInfo* info) {
  RecoveryInfo local;
  RecoveryInfo* out = info ? info : &local;
  *out = RecoveryInfo{};
  if (!sessions_.empty() || steps_served_ != 0 || next_id_ != 1 ||
      journal_started_) {
    return Status::FailedPrecondition(
        "RecoverFromJournal requires a freshly constructed manager");
  }
  const std::string prev_path = path + ".prev";
  const bool have_main = FileExists(path);
  const bool have_prev = FileExists(prev_path);
  if (!have_main && !have_prev) {
    return Status::NotFound("no journal at '" + path + "'");
  }

  JournalContents main_contents;
  if (have_main) {
    Result<JournalContents> parsed = ReadJournal(path);
    if (!parsed.ok()) return parsed.status();
    main_contents = std::move(parsed).value();
    if (main_contents.has_meta) {
      ATENA_RETURN_IF_ERROR(VerifyJournalMeta(main_contents.meta));
    }
  }

  struct RecoveringGuard {
    bool* flag;
    ~RecoveringGuard() { *flag = false; }
  } guard{&recovering_};
  recovering_ = true;

  // Choose and restore the base state: the journal's own compaction
  // snapshot when it decodes (sidecar included), else `.prev` replayed in
  // full — it ends exactly at the state the corrupt snapshot captured.
  JournalContents prev_contents;
  bool based = false;
  Status base_error;
  if (have_main && main_contents.has_meta && main_contents.snapshot_valid) {
    base_error = ReplayJournalSnapshot(main_contents.snapshot, path, out);
    if (base_error.ok()) {
      based = true;
    } else if (base_error.code() == StatusCode::kInvalidArgument) {
      return base_error;  // config mismatch or partial mutation: no fallback
    }
  } else if (have_main && main_contents.has_meta) {
    base_error =
        Status::IOError("compaction snapshot in '" + path + "' is unreadable");
  }
  if (!based) {
    if (have_prev) {
      Result<JournalContents> parsed = ReadJournal(prev_path);
      if (!parsed.ok()) return parsed.status();
      prev_contents = std::move(parsed).value();
      if (!prev_contents.has_meta || !prev_contents.snapshot_valid) {
        return Status::IOError("journal '" + path + "' and its fallback '" +
                               prev_path + "' are both unusable");
      }
      ATENA_RETURN_IF_ERROR(VerifyJournalMeta(prev_contents.meta));
      ATENA_RETURN_IF_ERROR(
          ReplayJournalSnapshot(prev_contents.snapshot, path, out));
      for (const JournalRecord& record : prev_contents.records) {
        ATENA_RETURN_IF_ERROR(ReplayJournalRecord(record, out));
      }
      out->torn_tail = out->torn_tail || !prev_contents.clean_tail;
      out->used_prev_fallback = true;
      ++stats_.recovery_fallbacks;
      based = true;
      if (health_log_.enabled()) {
        health_log_.Append(
            "\"type\":\"recover_fallback\",\"path\":" + JsonString(path) +
            ",\"detail\":" +
            JsonString(base_error.ok() ? "snapshot unreadable"
                                       : base_error.message()));
      }
    } else if (have_main && (main_contents.header_torn ||
                             !main_contents.has_meta)) {
      // Nothing durable ever made it into the journal: the empty prefix is
      // the correct recovered state.
      out->torn_tail = true;
      based = true;
    } else {
      return base_error.ok()
                 ? Status::IOError("journal '" + path +
                                   "' has no usable base state and no '" +
                                   prev_path + "' fallback")
                 : base_error;
    }
  }

  // Apply the records appended after the (possibly corrupt) snapshot.
  if (have_main && main_contents.has_meta) {
    for (const JournalRecord& record : main_contents.records) {
      ATENA_RETURN_IF_ERROR(ReplayJournalRecord(record, out));
    }
    out->torn_tail = out->torn_tail || !main_contents.clean_tail;
  }
  recovering_ = false;

  out->sessions_restored = active_sessions();
  stats_.recovered_sessions += out->sessions_restored;
  if (health_log_.enabled()) {
    // 0 steps over 0 served is NaN — exactly what JsonNumber's quoted
    // non-finite convention exists for.
    const double degraded_frac = static_cast<double>(stats_.degraded_steps) /
                                 static_cast<double>(steps_served_);
    health_log_.Append(
        "\"type\":\"recover_ok\",\"sessions\":" +
        std::to_string(out->sessions_restored) +
        ",\"ticks\":" + std::to_string(out->ticks_replayed) +
        ",\"steps\":" + std::to_string(out->steps_replayed) +
        ",\"fallback\":" + (out->used_prev_fallback ? "true" : "false") +
        ",\"torn_tail\":" + (out->torn_tail ? "true" : "false") +
        ",\"degraded_frac\":" + JsonNumber(degraded_frac));
  }
  // Close recovery with a compaction: the next crash replays from here,
  // not from the pre-crash snapshot again.
  if (!options_.journal_path.empty()) {
    Status compacted = CompactJournal();
    (void)compacted;  // a failure already marked the journal broken
  }
  return Status::OK();
}

std::vector<SessionOutcome> SessionManager::TakeCompleted() {
  // Delivery is the group-commit barrier: the tick records that produced
  // these outcomes (and any earlier unsynced ones) become durable with
  // one fdatasync before the outcomes become externally visible. Ticks
  // whose completions nobody has collected yet cost no flush at all.
  if (!completed_.empty()) SyncJournal();
  std::vector<SessionOutcome> out = std::move(completed_);
  completed_.clear();
  return out;
}

std::vector<NotebookStore::Match> SessionManager::QuerySimilarNotebooks(
    const std::vector<std::vector<double>>& display_vectors, int k) const {
  if (!options_.notebook_store) return {};
  return options_.notebook_store->TopK(display_vectors, k);
}

SessionTrace ServeSingleSessionSerial(const PolicySnapshot& snapshot,
                                      const SessionConfig& config,
                                      RewardSignal* reward) {
  EnvConfig env_config = snapshot.options().env;
  env_config.seed = config.seed;
  EdaEnvironment env(snapshot.dataset(), env_config);
  env.SetRewardSignal(reward);
  Rng act_rng(ActingStreamSeed(config.seed));
  const int max_steps = EffectiveMaxSteps(config, env_config);

  SessionTrace trace;
  trace.seed = config.seed;
  trace.steps.reserve(static_cast<size_t>(max_steps));
  std::vector<double> observation = env.Reset();
  TwofoldPolicy* policy = snapshot.policy();
  for (int step = 0; step < max_steps; ++step) {
    const PolicyStep act = config.greedy ? policy->ActGreedy(observation)
                                         : policy->Act(observation, &act_rng);
    StepOutcome out = ApplyAction(&env, act.action);
    trace.steps.push_back(RecordStep(out, env));
    trace.total_reward += out.reward;
    if (out.done && step + 1 < max_steps) {
      observation = env.Reset();
    } else {
      observation = std::move(out.observation);
    }
  }
  return trace;
}

}  // namespace atena
