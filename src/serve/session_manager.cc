#include "serve/session_manager.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "rl/policy.h"

namespace atena {

uint64_t ActingStreamSeed(uint64_t session_seed) {
  // Any fixed non-zero salt works: SplitMix64 seeding decorrelates the
  // resulting stream from the environment's (seeded with the raw value).
  return session_seed ^ 0xA3EC4155D1E5ULL;
}

namespace {

int EffectiveMaxSteps(const SessionConfig& config, const EnvConfig& env) {
  return config.max_steps > 0 ? config.max_steps : env.episode_length;
}

ServedStep RecordStep(const StepOutcome& out, const EdaEnvironment& env) {
  return ServedStep{out.op, out.valid, out.reward,
                    DisplayVectorKey(env.current_display(),
                                     env.config().stats_row_cap)};
}

}  // namespace

SessionManager::SessionManager(std::shared_ptr<const PolicySnapshot> snapshot,
                               ServeOptions options)
    : snapshot_(std::move(snapshot)), options_(std::move(options)) {
  if (options_.cache_capacity > 0) {
    cache_ = std::make_shared<DisplayCache>(DisplayCache::Options{
        .capacity = options_.cache_capacity,
        .shards = options_.cache_shards});
  }
  const int threads =
      options_.num_threads > 0
          ? options_.num_threads
          : ThreadPool::DefaultThreads(std::numeric_limits<int>::max());
  pool_ = std::make_unique<ThreadPool>(threads);
}

SessionManager::~SessionManager() = default;

std::unique_ptr<EdaEnvironment> SessionManager::AcquireEnv(uint64_t seed) {
  if (!env_pool_.empty()) {
    std::unique_ptr<EdaEnvironment> env = std::move(env_pool_.back());
    env_pool_.pop_back();
    // Reseeding the term stream (plus the Reset in Admit) makes a recycled
    // environment observationally identical to a freshly constructed one;
    // the expensive dataset-derived state (distinct-value ratios, encoder
    // layout) depends only on the dataset and carries over untouched.
    env->set_rng_state(Rng(seed).state());
    return env;
  }
  EnvConfig config = snapshot_->options().env;
  config.seed = seed;
  // All sessions share the manager's cache, injected in Admit.
  config.display_cache_enabled = false;
  return std::make_unique<EdaEnvironment>(snapshot_->dataset(), config);
}

uint64_t SessionManager::Admit(const SessionConfig& config) {
  auto session = std::make_unique<Session>();
  session->id = next_id_++;
  session->config = config;
  session->effective_max_steps =
      EffectiveMaxSteps(config, snapshot_->options().env);
  session->env = AcquireEnv(config.seed);
  session->env->SetDisplayCache(cache_);
  if (options_.reward_factory) {
    session->reward = options_.reward_factory();
  }
  session->env->SetRewardSignal(session->reward.get());
  session->act_rng = Rng(ActingStreamSeed(config.seed));
  session->observation = session->env->Reset();
  session->trace.id = session->id;
  session->trace.seed = config.seed;
  session->trace.steps.reserve(
      static_cast<size_t>(session->effective_max_steps));
  const uint64_t id = session->id;
  sessions_.push_back(std::move(session));
  return id;
}

int SessionManager::Tick() {
  const int live = static_cast<int>(sessions_.size());
  if (live == 0) return 0;
  TwofoldPolicy* policy = snapshot_->policy();

  // 1. Serial act: one batched forward over every live session, each row
  // drawing from its session's private stream (or none when greedy).
  std::vector<PolicyStep> acts;
  if (options_.batched_acting) {
    // Pad the batch up to the forward pass's 4-row register-tile width so a
    // draining runtime (1–3 live sessions) keeps the tiled GEMM instead of
    // falling back to per-row dot products. GEMM rows are independent, and
    // a padded row carries a null Rng, so live rows' results are
    // bit-identical with or without padding; padded outputs are dropped.
    constexpr int kTileRows = 4;
    const int rows = std::max(live, kTileRows);
    obs_batch_.Resize(rows, snapshot_->observation_dim());
    rngs_.assign(static_cast<size_t>(rows), nullptr);
    for (int i = 0; i < live; ++i) {
      Session& s = *sessions_[static_cast<size_t>(i)];
      std::copy(s.observation.begin(), s.observation.end(),
                obs_batch_.RowPtr(i));
      if (!s.config.greedy) rngs_[static_cast<size_t>(i)] = &s.act_rng;
    }
    for (int i = live; i < rows; ++i) {
      std::copy(obs_batch_.RowPtr(0),
                obs_batch_.RowPtr(0) + obs_batch_.cols(), obs_batch_.RowPtr(i));
    }
    acts = policy->ActBatch(obs_batch_, rngs_);
    acts.resize(static_cast<size_t>(live));
  } else {
    // Baseline path: one forward per session (what bench_serve compares
    // the batched path against).
    acts.reserve(static_cast<size_t>(live));
    for (int i = 0; i < live; ++i) {
      Session& s = *sessions_[static_cast<size_t>(i)];
      acts.push_back(s.config.greedy ? policy->ActGreedy(s.observation)
                                     : policy->Act(s.observation, &s.act_rng));
    }
  }

  // 2. Parallel step: index-addressed slots; a worker touches only its
  // session's environment plus the internally synchronized cache.
  outcomes_.resize(static_cast<size_t>(live));
  pool_->ParallelFor(live, [&](int i) {
    outcomes_[static_cast<size_t>(i)] =
        ApplyAction(sessions_[static_cast<size_t>(i)]->env.get(),
                    acts[static_cast<size_t>(i)].action);
  });

  // 3. Serial commit in admission order: record, retire, reset.
  for (int i = 0; i < live; ++i) {
    Session& s = *sessions_[static_cast<size_t>(i)];
    StepOutcome& out = outcomes_[static_cast<size_t>(i)];
    s.trace.steps.push_back(RecordStep(out, *s.env));
    s.trace.total_reward += out.reward;
    ++s.steps_done;
    ++steps_served_;
    if (s.steps_done >= s.effective_max_steps) {
      completed_.push_back(std::move(s.trace));
      s.env->SetRewardSignal(nullptr);
      env_pool_.push_back(std::move(s.env));
      sessions_[static_cast<size_t>(i)].reset();
    } else if (out.done) {
      // Episode boundary inside a longer session: start the next notebook.
      s.observation = s.env->Reset();
    } else {
      s.observation = std::move(out.observation);
    }
  }
  sessions_.erase(std::remove(sessions_.begin(), sessions_.end(), nullptr),
                  sessions_.end());
  return live;
}

void SessionManager::Drain() {
  while (!sessions_.empty()) Tick();
}

std::vector<SessionTrace> SessionManager::TakeCompleted() {
  std::vector<SessionTrace> out = std::move(completed_);
  completed_.clear();
  return out;
}

SessionTrace ServeSingleSessionSerial(const PolicySnapshot& snapshot,
                                      const SessionConfig& config,
                                      RewardSignal* reward) {
  EnvConfig env_config = snapshot.options().env;
  env_config.seed = config.seed;
  EdaEnvironment env(snapshot.dataset(), env_config);
  env.SetRewardSignal(reward);
  Rng act_rng(ActingStreamSeed(config.seed));
  const int max_steps = EffectiveMaxSteps(config, env_config);

  SessionTrace trace;
  trace.seed = config.seed;
  trace.steps.reserve(static_cast<size_t>(max_steps));
  std::vector<double> observation = env.Reset();
  TwofoldPolicy* policy = snapshot.policy();
  for (int step = 0; step < max_steps; ++step) {
    const PolicyStep act = config.greedy ? policy->ActGreedy(observation)
                                         : policy->Act(observation, &act_rng);
    StepOutcome out = ApplyAction(&env, act.action);
    trace.steps.push_back(RecordStep(out, env));
    trace.total_reward += out.reward;
    if (out.done && step + 1 < max_steps) {
      observation = env.Reset();
    } else {
      observation = std::move(out.observation);
    }
  }
  return trace;
}

}  // namespace atena
