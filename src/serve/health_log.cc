#include "serve/health_log.h"

#include <cstdio>
#include <utility>

#include "common/file_io.h"
#include "common/logging.h"

namespace atena {

ServingHealthLog::ServingHealthLog(std::string path)
    : path_(std::move(path)) {}

void ServingHealthLog::Append(const std::string& body) {
  if (path_.empty()) return;
  ++events_;
  log_ += "{\"event\":" + std::to_string(events_) + "," + body + "}\n";
  Status written = AtomicWriteFile(path_, log_);
  if (!written.ok()) {
    ATENA_LOG(kWarning) << "serving health log write failed: " << written;
  }
}

std::string JsonString(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  out += '"';
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace atena
