#include "serve/health_log.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "common/file_io.h"
#include "common/logging.h"

namespace atena {

ServingHealthLog::ServingHealthLog(std::string path)
    : path_(std::move(path)) {
  if (path_.empty() || !FileExists(path_)) return;
  // Reopening an existing log: continue event numbering after its last
  // complete line. A crash mid-append can leave a torn final line (the
  // durable-append contract); trim it so readers only ever see complete
  // lines, and so the next append starts at a line boundary.
  std::string raw;
  Status read = ReadFileToString(path_, &raw);
  if (!read.ok()) {
    ATENA_LOG(kWarning) << "serving health log reload failed: " << read;
    return;
  }
  const size_t last_newline = raw.find_last_of('\n');
  const std::string complete =
      last_newline == std::string::npos ? "" : raw.substr(0, last_newline + 1);
  for (char c : complete) {
    if (c == '\n') ++events_;
  }
  if (complete.size() != raw.size()) {
    Status trimmed = AtomicWriteFile(path_, complete);
    if (!trimmed.ok()) {
      ATENA_LOG(kWarning) << "serving health log torn-line trim failed: "
                          << trimmed;
    }
  }
}

void ServingHealthLog::Append(const std::string& body) {
  if (path_.empty()) return;
  ++events_;
  const std::string line =
      "{\"event\":" + std::to_string(events_) + "," + body + "}\n";
  Status written = AppendDurableFile(path_, line);
  if (!written.ok()) {
    ATENA_LOG(kWarning) << "serving health log write failed: " << written;
  }
}

std::string JsonString(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  out += '"';
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string JsonNumber(double value) {
  if (std::isnan(value)) return "\"nan\"";
  if (std::isinf(value)) return value > 0 ? "\"inf\"" : "\"-inf\"";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace atena
