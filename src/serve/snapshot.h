#ifndef ATENA_SERVE_SNAPSHOT_H_
#define ATENA_SERVE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/twofold_policy.h"
#include "data/dataset.h"
#include "eda/environment.h"

namespace atena {

/// What a PolicySnapshot is built from: the environment configuration the
/// policy was trained under (the observation layout depends on
/// history_displays / num_term_bins, so serving must mirror it) and the
/// network architecture.
struct SnapshotOptions {
  EnvConfig env;
  TwofoldPolicy::Options policy;
};

/// An immutable trained policy shared by every session of a serving
/// runtime (DESIGN.md §11).
///
/// The snapshot owns one TwofoldPolicy whose weights are written exactly
/// once — at construction or load — and never again: serving performs no
/// updates, so the parameter store behaves as read-only shared state. The
/// policy's *acting* is still stateful (it runs through the network's
/// internal workspace), which is why policy() is documented as
/// single-caller: the SessionManager performs all acting serially on its
/// scheduler thread — one batched forward per tick — and fans only
/// environment stepping out across workers.
///
/// The action space and observation dimension are derived from the dataset
/// schema + env config exactly as EdaEnvironment derives them, so a
/// snapshot can size and validate a network without constructing an
/// environment.
class PolicySnapshot {
 public:
  /// Builds a snapshot with freshly initialized weights
  /// (options.policy.seed) — what benches and determinism tests use when
  /// no trained container is needed.
  PolicySnapshot(Dataset dataset, SnapshotOptions options);

  PolicySnapshot(const PolicySnapshot&) = delete;
  PolicySnapshot& operator=(const PolicySnapshot&) = delete;

  const Dataset& dataset() const { return dataset_; }
  const SnapshotOptions& options() const { return options_; }
  const ActionSpace& action_space() const { return action_space_; }
  int observation_dim() const { return observation_dim_; }

  /// The shared network. Acting mutates the policy's internal workspace,
  /// so only one thread may drive it at a time (the scheduler thread of a
  /// SessionManager; concurrent SessionManagers need separate snapshots).
  TwofoldPolicy* policy() const { return policy_.get(); }

 private:
  Dataset dataset_;
  SnapshotOptions options_;
  ActionSpace action_space_;
  int observation_dim_ = 0;
  std::unique_ptr<TwofoldPolicy> policy_;
};

/// Loads a serving snapshot from `path`, which may be either container
/// this project writes — a bare ATENA-NN parameter file or a full
/// ATENA-CKPT training checkpoint (rl/checkpoint.h, LoadPolicyParameters).
/// The network is first constructed from `dataset` + `options`, then the
/// container's architecture is validated against it (parameter count,
/// names, shapes): a container trained with different hidden sizes or over
/// a different dataset schema fails with a descriptive Status instead of
/// serving garbage actions.
Result<std::shared_ptr<PolicySnapshot>> LoadPolicySnapshot(
    Dataset dataset, SnapshotOptions options, const std::string& path);

}  // namespace atena

#endif  // ATENA_SERVE_SNAPSHOT_H_
