#include "serve/snapshot.h"

#include <utility>

#include "eda/observation.h"
#include "rl/checkpoint.h"

namespace atena {

PolicySnapshot::PolicySnapshot(Dataset dataset, SnapshotOptions options)
    : dataset_(std::move(dataset)), options_(std::move(options)) {
  action_space_.num_columns = dataset_.table->num_columns();
  action_space_.num_term_bins = options_.env.num_term_bins;
  // The encoder is only needed to size the input layer; sessions build
  // their own inside EdaEnvironment.
  ObservationEncoder encoder(dataset_.table, options_.env.history_displays);
  observation_dim_ = encoder.observation_dim();
  policy_ = std::make_unique<TwofoldPolicy>(observation_dim_, action_space_,
                                            options_.policy);
  // Snapshots are immutable: freeze the network so batched forwards run the
  // tiled-GEMM inference path. LoadPolicySnapshot re-freezes after loading.
  policy_->PrepareForServing();
}

Result<std::shared_ptr<PolicySnapshot>> LoadPolicySnapshot(
    Dataset dataset, SnapshotOptions options, const std::string& path) {
  auto snapshot = std::make_shared<PolicySnapshot>(std::move(dataset),
                                                   std::move(options));
  Status loaded = LoadPolicyParameters(path, snapshot->policy()->Parameters());
  if (!loaded.ok()) {
    // Every loader error must name the offending file: operators reading a
    // serving health log or a reload failure need to know which snapshot
    // file to inspect. Most underlying errors (file_io's errno/CRC detail,
    // the checkpoint decoder) already carry it; wrap the ones that don't.
    if (loaded.message().find(path) == std::string::npos) {
      return Status(loaded.code(), "'" + path + "': " + loaded.message());
    }
    return loaded;
  }
  // The load replaced the weights; rebuild the frozen inference caches.
  snapshot->policy()->PrepareForServing();
  return snapshot;
}

}  // namespace atena
