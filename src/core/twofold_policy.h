#ifndef ATENA_CORE_TWOFOLD_POLICY_H_
#define ATENA_CORE_TWOFOLD_POLICY_H_

#include <memory>
#include <vector>

#include "rl/policy.h"

namespace atena {

/// ATENA's novel actor network (paper §5, Figure 3).
///
/// Instead of a flat softmax with one node per distinct action (100K+ nodes
/// even in the prototype environment), the network ends in:
///  1. a *Pre-Output Layer* with one node per operation type plus one node
///     per parameter **value** — |OP| + Σ_p |V(p)| nodes in total; and
///  2. a *Multi-Softmax Layer*: a separate softmax segment for the
///     operation type and for each parameter. The operation type is
///     sampled first; only the chosen operation's parameter segments are
///     then sampled (FILTER → column/operator/term-bin, GROUP →
///     key-column/aggregation/target-column, BACK → nothing).
///
/// The joint probability of an action factorizes as
/// π(a|s) = p(op|s) · Π_{p ∈ P^op} p(v_p|s), and the policy entropy used
/// for the exploration bonus is the exact joint entropy
/// H = H(op) + Σ_o p(o) Σ_{p ∈ P^o} H(segment_p).
///
/// A critic value head shares the dense trunk (Advantage Actor-Critic with
/// PPO, paper §6.1).
///
/// All learnable tensors live in one ParameterStore; the layer graph is
/// stateless, and the policy's own acting/update passes run through an
/// internal Workspace. ActBatch evaluates any number of actors' current
/// observations in a single forward pass.
class TwofoldPolicy final : public Policy {
 public:
  struct Options {
    std::vector<int> hidden = {64, 64};
    uint64_t seed = 17;
  };

  TwofoldPolicy(int observation_dim, const ActionSpace& space)
      : TwofoldPolicy(observation_dim, space, Options()) {}
  TwofoldPolicy(int observation_dim, const ActionSpace& space,
                Options options);

  PolicyStep Act(const std::vector<double>& observation, Rng* rng) override;
  PolicyStep ActGreedy(const std::vector<double>& observation) override;
  std::vector<PolicyStep> ActBatch(const Matrix& observations,
                                   Rng* rng) override;
  std::vector<PolicyStep> ActBatch(const Matrix& observations,
                                   const std::vector<Rng*>& rngs) override;
  BatchEvaluation ForwardBatch(
      const Matrix& observations,
      const std::vector<ActionRecord>& actions) override;
  void BackwardBatch(const std::vector<SampleGrad>& grads) override;
  std::vector<Parameter*> Parameters() override;
  void PrepareForServing() override;

  /// Width of the pre-output layer: |OP| + Σ_p |V(p)| (paper §5).
  int pre_output_width() const { return total_nodes_; }

  /// All learnable tensors of the policy (for checkpointing).
  const ParameterStore& parameter_store() const { return store_; }

  /// Number of full network forward passes executed so far, counting a
  /// batched pass once regardless of batch size. Lets tests assert that
  /// multi-actor acting really is one forward per lockstep tick.
  int64_t forward_passes() const { return forward_passes_; }

 private:
  /// Segment layout: 0 = op type; 1..3 = filter params; 4..6 = group params.
  static constexpr int kNumSegments = 7;

  struct SegmentProbs {
    // Softmax probabilities laid out like the logits row (total_nodes_).
    std::vector<double> probs;
  };

  /// Computes per-segment softmax probabilities of one logits row.
  SegmentProbs ComputeProbs(const double* logits) const;
  /// Entropy of segment `s` under `probs`.
  double SegmentEntropy(const SegmentProbs& probs, int segment) const;
  /// Joint entropy (see class comment).
  double JointEntropy(const SegmentProbs& probs) const;
  /// Joint log-probability of a structured action.
  double ActionLogProb(const SegmentProbs& probs,
                       const EnvAction& action) const;
  /// Parameter-segment indices of operation-type `op` (empty for BACK).
  static std::vector<int> OpSegments(int op);
  /// The chosen value index inside segment `segment` for `action`.
  static int ChosenIndex(const EnvAction& action, int segment);

  /// Runs trunk + both heads over `observations` through the internal
  /// workspace; the returned references alias workspace storage.
  struct GraphOutputs {
    const Matrix* logits;
    const Matrix* values;
  };
  GraphOutputs ForwardGraph(const Matrix& observations);

  /// Samples (or argmaxes, when `rng` is null) one PolicyStep from a
  /// logits row and its critic value.
  PolicyStep StepFromRow(const double* logits, double value, Rng* rng) const;

  /// Serving-lean StepFromRow: softmaxes only the op segment plus the
  /// chosen operation's parameter segments (segments are independent, so
  /// the values — and hence the action, log_prob and value — are
  /// bit-identical to the full pass) and skips the joint entropy, the
  /// training-only exploration diagnostic (reported as 0). Roughly halves
  /// the exp count and drops ~60 log calls per action, which is most of
  /// the per-row cost left after the batched forward.
  PolicyStep ServeStepFromRow(const double* logits, double value,
                              Rng* rng) const;

  PolicyStep MakeStep(const std::vector<double>& observation, Rng* rng);

  std::vector<int> segment_sizes_;
  std::vector<int> segment_offsets_;
  int total_nodes_ = 0;

  ParameterStore store_;
  std::unique_ptr<Sequential> trunk_;
  std::unique_ptr<Dense> policy_head_;
  std::unique_ptr<Dense> value_head_;
  Workspace ws_;
  int64_t forward_passes_ = 0;

  // Caches from the last ForwardBatch for BackwardBatch.
  std::vector<SegmentProbs> batch_probs_;
  std::vector<EnvAction> batch_actions_;
  int batch_size_ = 0;
};

}  // namespace atena

#endif  // ATENA_CORE_TWOFOLD_POLICY_H_
