#ifndef ATENA_CORE_ATENA_H_
#define ATENA_CORE_ATENA_H_

#include <memory>

#include "core/twofold_policy.h"
#include "data/dataset.h"
#include "eda/session.h"
#include "reward/compound.h"
#include "rl/trainer.h"

namespace atena {

/// End-to-end configuration of an ATENA run (paper §3: upload dataset →
/// pick focal attributes → instantiate the EDA control problem → train the
/// DRL agent on the dataset → emit the best episode as a notebook).
struct AtenaOptions {
  EnvConfig env;
  TrainerOptions trainer;
  TwofoldPolicy::Options policy;
  CompoundReward::Options reward;
  /// Parallel exploration actors (rl/parallel_trainer.h). Actor `e` runs
  /// its own environment seeded `env.seed + e` with its own reward-signal
  /// clone; all actors share one display cache and one trained coherency
  /// classifier. 1 reproduces the historical single-env run bit for bit.
  /// Environment stepping concurrency is `trainer.num_threads`.
  int num_actors = 1;
};

/// Everything an ATENA run produces.
struct AtenaResult {
  EdaNotebook notebook;
  TrainingResult training;
  /// The calibrated reward used (kept alive for inspection / re-scoring).
  std::shared_ptr<CompoundReward> reward;
};

/// ATENA: builds the EDA environment over `dataset`, assembles the
/// compound reward (coherency classifier trained via weak supervision,
/// weights calibrated), trains the twofold-output DRL agent with PPO, and
/// returns the notebook generated from the highest-reward episode.
///
/// Deterministic for fixed options. Training cost is governed by
/// `options.trainer.total_steps`; see DESIGN.md substitution #7 for the
/// scaled-down defaults.
Result<AtenaResult> RunAtena(const Dataset& dataset,
                             const AtenaOptions& options);
Result<AtenaResult> RunAtena(const Dataset& dataset);

/// Reads ATENA_TRAIN_STEPS from the environment (if set) into
/// `options->trainer.total_steps`; benches use this to scale experiment
/// cost without recompiling.
void ApplyTrainStepsFromEnv(AtenaOptions* options);

}  // namespace atena

#endif  // ATENA_CORE_ATENA_H_
