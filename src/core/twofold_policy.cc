#include "core/twofold_policy.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace atena {

namespace {

double SafeLog(double p) { return std::log(std::max(p, 1e-12)); }

int SampleFromProbs(const double* probs, int count, Rng* rng) {
  double target = rng->NextDouble();
  double acc = 0.0;
  for (int i = 0; i < count; ++i) {
    acc += probs[i];
    if (target < acc) return i;
  }
  return count - 1;
}

int ArgmaxProbs(const double* probs, int count) {
  int best = 0;
  for (int i = 1; i < count; ++i) {
    if (probs[i] > probs[best]) best = i;
  }
  return best;
}

}  // namespace

TwofoldPolicy::TwofoldPolicy(int observation_dim, const ActionSpace& space,
                             Options options) {
  segment_sizes_ = space.SegmentSizes();
  ATENA_CHECK(static_cast<int>(segment_sizes_.size()) == kNumSegments)
      << "unexpected segment layout";
  segment_offsets_.resize(segment_sizes_.size());
  total_nodes_ = 0;
  for (size_t s = 0; s < segment_sizes_.size(); ++s) {
    segment_offsets_[s] = total_nodes_;
    total_nodes_ += segment_sizes_[s];
  }

  Rng rng(options.seed);
  trunk_ = std::make_unique<Sequential>();
  int prev = observation_dim;
  int idx = 0;
  for (int h : options.hidden) {
    trunk_->Add(std::make_unique<Dense>(prev, h, &store_,
                                        "trunk." + std::to_string(idx++),
                                        &rng));
    trunk_->Add(std::make_unique<Relu>());
    prev = h;
  }
  policy_head_ =
      std::make_unique<Dense>(prev, total_nodes_, &store_, "policy_head", &rng);
  value_head_ = std::make_unique<Dense>(prev, 1, &store_, "value_head", &rng);
}

std::vector<int> TwofoldPolicy::OpSegments(int op) {
  switch (op) {
    case 0:  // FILTER(attr, op, term-bin)
      return {1, 2, 3};
    case 1:  // GROUP(g_attr, agg_func, agg_attr)
      return {4, 5, 6};
    default:  // BACK()
      return {};
  }
}

int TwofoldPolicy::ChosenIndex(const EnvAction& action, int segment) {
  switch (segment) {
    case 0:
      return static_cast<int>(action.type);
    case 1:
      return action.filter_column;
    case 2:
      return action.filter_op;
    case 3:
      return action.filter_bin;
    case 4:
      return action.group_column;
    case 5:
      return action.agg_func;
    case 6:
      return action.agg_column;
  }
  return 0;
}

TwofoldPolicy::SegmentProbs TwofoldPolicy::ComputeProbs(
    const double* logits) const {
  SegmentProbs out;
  out.probs.assign(logits, logits + total_nodes_);
  for (size_t s = 0; s < segment_sizes_.size(); ++s) {
    const int begin = segment_offsets_[s];
    const int end = begin + segment_sizes_[s];
    double max_logit = out.probs[begin];
    for (int j = begin; j < end; ++j) {
      max_logit = std::max(max_logit, out.probs[j]);
    }
    double total = 0.0;
    for (int j = begin; j < end; ++j) {
      out.probs[j] = std::exp(out.probs[j] - max_logit);
      total += out.probs[j];
    }
    for (int j = begin; j < end; ++j) out.probs[j] /= total;
  }
  return out;
}

double TwofoldPolicy::SegmentEntropy(const SegmentProbs& probs,
                                     int segment) const {
  const int begin = segment_offsets_[segment];
  const int end = begin + segment_sizes_[segment];
  double h = 0.0;
  for (int j = begin; j < end; ++j) {
    const double p = probs.probs[j];
    if (p > 0.0) h -= p * SafeLog(p);
  }
  return h;
}

double TwofoldPolicy::JointEntropy(const SegmentProbs& probs) const {
  double h = SegmentEntropy(probs, 0);
  for (int op = 0; op < segment_sizes_[0]; ++op) {
    const double p_op = probs.probs[segment_offsets_[0] + op];
    double params = 0.0;
    for (int s : OpSegments(op)) params += SegmentEntropy(probs, s);
    h += p_op * params;
  }
  return h;
}

double TwofoldPolicy::ActionLogProb(const SegmentProbs& probs,
                                    const EnvAction& action) const {
  const int op = static_cast<int>(action.type);
  double logp = SafeLog(probs.probs[segment_offsets_[0] + op]);
  for (int s : OpSegments(op)) {
    const int k = ChosenIndex(action, s);
    logp += SafeLog(probs.probs[segment_offsets_[s] + k]);
  }
  return logp;
}

TwofoldPolicy::GraphOutputs TwofoldPolicy::ForwardGraph(
    const Matrix& observations) {
  const Matrix& h = trunk_->Forward(observations, &ws_);
  GraphOutputs out;
  out.logits = &policy_head_->Forward(h, &ws_);
  out.values = &value_head_->Forward(h, &ws_);
  ++forward_passes_;
  return out;
}

PolicyStep TwofoldPolicy::StepFromRow(const double* logits, double value,
                                      Rng* rng) const {
  SegmentProbs probs = ComputeProbs(logits);

  EnvAction action;
  auto pick = [&](int segment) {
    const double* p = probs.probs.data() + segment_offsets_[segment];
    const int n = segment_sizes_[segment];
    return rng == nullptr ? ArgmaxProbs(p, n) : SampleFromProbs(p, n, rng);
  };
  const int op = pick(0);
  action.type = static_cast<OpType>(op);
  // Sample only the chosen operation's parameter segments (the Multi-
  // Softmax layer activates just those segments, paper §5); the rest stay 0
  // and are ignored downstream.
  for (int s : OpSegments(op)) {
    const int k = pick(s);
    switch (s) {
      case 1:
        action.filter_column = k;
        break;
      case 2:
        action.filter_op = k;
        break;
      case 3:
        action.filter_bin = k;
        break;
      case 4:
        action.group_column = k;
        break;
      case 5:
        action.agg_func = k;
        break;
      case 6:
        action.agg_column = k;
        break;
      default:
        break;
    }
  }

  PolicyStep step;
  step.action.structured = action;
  step.action.is_concrete = false;
  step.log_prob = ActionLogProb(probs, action);
  step.entropy = JointEntropy(probs);
  step.value = value;
  return step;
}

PolicyStep TwofoldPolicy::ServeStepFromRow(const double* logits, double value,
                                           Rng* rng) const {
  // Unused segments stay 0 — ActionLogProb only reads the chosen ones.
  SegmentProbs probs;
  probs.probs.assign(static_cast<size_t>(total_nodes_), 0.0);
  // Bit-identical to the matching slice of ComputeProbs: same max shift,
  // same exp/accumulate/divide order.
  auto softmax_segment = [&](int segment) {
    const int begin = segment_offsets_[segment];
    const int end = begin + segment_sizes_[segment];
    double max_logit = logits[begin];
    for (int j = begin; j < end; ++j) {
      max_logit = std::max(max_logit, logits[j]);
    }
    double total = 0.0;
    for (int j = begin; j < end; ++j) {
      probs.probs[j] = std::exp(logits[j] - max_logit);
      total += probs.probs[j];
    }
    for (int j = begin; j < end; ++j) probs.probs[j] /= total;
  };
  auto pick = [&](int segment) {
    const double* p = probs.probs.data() + segment_offsets_[segment];
    const int n = segment_sizes_[segment];
    return rng == nullptr ? ArgmaxProbs(p, n) : SampleFromProbs(p, n, rng);
  };

  EnvAction action;
  softmax_segment(0);
  const int op = pick(0);
  action.type = static_cast<OpType>(op);
  for (int s : OpSegments(op)) {
    softmax_segment(s);
    const int k = pick(s);
    switch (s) {
      case 1:
        action.filter_column = k;
        break;
      case 2:
        action.filter_op = k;
        break;
      case 3:
        action.filter_bin = k;
        break;
      case 4:
        action.group_column = k;
        break;
      case 5:
        action.agg_func = k;
        break;
      case 6:
        action.agg_column = k;
        break;
      default:
        break;
    }
  }

  PolicyStep step;
  step.action.structured = action;
  step.action.is_concrete = false;
  step.log_prob = ActionLogProb(probs, action);
  step.entropy = 0.0;
  step.value = value;
  return step;
}

PolicyStep TwofoldPolicy::MakeStep(const std::vector<double>& observation,
                                   Rng* rng) {
  Matrix obs = Matrix::FromRow(observation);
  GraphOutputs out = ForwardGraph(obs);
  return StepFromRow(out.logits->RowPtr(0), (*out.values)(0, 0), rng);
}

PolicyStep TwofoldPolicy::Act(const std::vector<double>& observation,
                              Rng* rng) {
  return MakeStep(observation, rng);
}

PolicyStep TwofoldPolicy::ActGreedy(const std::vector<double>& observation) {
  return MakeStep(observation, /*rng=*/nullptr);
}

std::vector<PolicyStep> TwofoldPolicy::ActBatch(const Matrix& observations,
                                                Rng* rng) {
  // One forward pass for every actor; rows are then sampled in order, each
  // consuming `rng` exactly as a per-sample Act would (bit-identical).
  GraphOutputs out = ForwardGraph(observations);
  std::vector<PolicyStep> steps;
  steps.reserve(static_cast<size_t>(observations.rows()));
  for (int r = 0; r < observations.rows(); ++r) {
    steps.push_back(
        StepFromRow(out.logits->RowPtr(r), (*out.values)(r, 0), rng));
  }
  return steps;
}

std::vector<PolicyStep> TwofoldPolicy::ActBatch(const Matrix& observations,
                                                const std::vector<Rng*>& rngs) {
  ATENA_CHECK(static_cast<int>(rngs.size()) == observations.rows())
      << "ActBatch needs one Rng slot per observation row ("
      << rngs.size() << " vs " << observations.rows() << ")";
  // One forward pass for all sessions; each row is then sampled from its
  // own private stream (null = greedy), so a row's action, log_prob and
  // value are bit-identical to a per-sample Act regardless of which other
  // rows share the batch — the cross-session batched-serving contract
  // (src/serve/). Entropy is skipped per the overload's contract.
  GraphOutputs out = ForwardGraph(observations);
  std::vector<PolicyStep> steps;
  steps.reserve(static_cast<size_t>(observations.rows()));
  for (int r = 0; r < observations.rows(); ++r) {
    steps.push_back(ServeStepFromRow(out.logits->RowPtr(r),
                                     (*out.values)(r, 0),
                                     rngs[static_cast<size_t>(r)]));
  }
  return steps;
}

BatchEvaluation TwofoldPolicy::ForwardBatch(
    const Matrix& observations, const std::vector<ActionRecord>& actions) {
  const int batch = observations.rows();
  GraphOutputs out = ForwardGraph(observations);
  const Matrix& logits = *out.logits;
  const Matrix& values = *out.values;

  batch_probs_.clear();
  batch_probs_.reserve(static_cast<size_t>(batch));
  batch_actions_.clear();
  batch_actions_.reserve(static_cast<size_t>(batch));
  batch_size_ = batch;

  BatchEvaluation eval;
  eval.log_probs.resize(static_cast<size_t>(batch));
  eval.entropies.resize(static_cast<size_t>(batch));
  eval.values.resize(static_cast<size_t>(batch));
  for (int b = 0; b < batch; ++b) {
    SegmentProbs probs = ComputeProbs(logits.RowPtr(b));
    const EnvAction& action = actions[static_cast<size_t>(b)].structured;
    eval.log_probs[static_cast<size_t>(b)] = ActionLogProb(probs, action);
    eval.entropies[static_cast<size_t>(b)] = JointEntropy(probs);
    eval.values[static_cast<size_t>(b)] = values(b, 0);
    batch_probs_.push_back(std::move(probs));
    batch_actions_.push_back(action);
  }
  return eval;
}

void TwofoldPolicy::BackwardBatch(const std::vector<SampleGrad>& grads) {
  ATENA_CHECK(static_cast<int>(grads.size()) == batch_size_)
      << "BackwardBatch called with mismatched batch";

  Matrix dlogits(batch_size_, total_nodes_);
  Matrix dvalues(batch_size_, 1);

  for (int b = 0; b < batch_size_; ++b) {
    const SampleGrad& g = grads[static_cast<size_t>(b)];
    const SegmentProbs& probs = batch_probs_[static_cast<size_t>(b)];
    const EnvAction& action = batch_actions_[static_cast<size_t>(b)];
    double* drow = dlogits.RowPtr(b);
    dvalues(b, 0) = g.d_value;

    const int op = static_cast<int>(action.type);
    const int op_offset = segment_offsets_[0];

    // --- log-prob gradient: (one-hot − p) on the op segment and on the
    // chosen op's parameter segments.
    for (int j = 0; j < segment_sizes_[0]; ++j) {
      const double indicator = (j == op) ? 1.0 : 0.0;
      drow[op_offset + j] +=
          g.d_log_prob * (indicator - probs.probs[op_offset + j]);
    }
    for (int s : OpSegments(op)) {
      const int offset = segment_offsets_[s];
      const int chosen = ChosenIndex(action, s);
      for (int j = 0; j < segment_sizes_[s]; ++j) {
        const double indicator = (j == chosen) ? 1.0 : 0.0;
        drow[offset + j] +=
            g.d_log_prob * (indicator - probs.probs[offset + j]);
      }
    }

    // --- entropy gradient of the exact joint entropy.
    if (g.d_entropy != 0.0) {
      const double h_op = SegmentEntropy(probs, 0);
      std::vector<double> param_entropy(
          static_cast<size_t>(segment_sizes_[0]), 0.0);
      double mean_param_entropy = 0.0;
      for (int o = 0; o < segment_sizes_[0]; ++o) {
        double s_o = 0.0;
        for (int s : OpSegments(o)) s_o += SegmentEntropy(probs, s);
        param_entropy[static_cast<size_t>(o)] = s_o;
        mean_param_entropy += probs.probs[op_offset + o] * s_o;
      }
      // Op segment: dH/dz_j = −p_j(log p_j + H_op) + p_j(S_j − Σ_o p_o S_o).
      for (int j = 0; j < segment_sizes_[0]; ++j) {
        const double p = probs.probs[op_offset + j];
        const double d = -p * (SafeLog(p) + h_op) +
                         p * (param_entropy[static_cast<size_t>(j)] -
                              mean_param_entropy);
        drow[op_offset + j] += g.d_entropy * d;
      }
      // Parameter segments: dH/dz = p(o) · (−p_j(log p_j + H_segment)).
      for (int o = 0; o < segment_sizes_[0]; ++o) {
        const double p_op = probs.probs[op_offset + o];
        for (int s : OpSegments(o)) {
          const int offset = segment_offsets_[s];
          const double h_s = SegmentEntropy(probs, s);
          for (int j = 0; j < segment_sizes_[s]; ++j) {
            const double p = probs.probs[offset + j];
            drow[offset + j] +=
                g.d_entropy * p_op * (-p * (SafeLog(p) + h_s));
          }
        }
      }
    }
  }

  Matrix grad_h = policy_head_->Backward(dlogits, &ws_);
  AxpyInPlace(&grad_h, value_head_->Backward(dvalues, &ws_), 1.0);
  trunk_->Backward(grad_h, &ws_);
}

std::vector<Parameter*> TwofoldPolicy::Parameters() { return store_.All(); }

void TwofoldPolicy::PrepareForServing() {
  trunk_->PrepareForServing();
  policy_head_->PrepareForServing();
  value_head_->PrepareForServing();
}

}  // namespace atena
