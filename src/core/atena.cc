#include "core/atena.h"

#include <cstdlib>

#include "common/logging.h"
#include "common/string_utils.h"

namespace atena {

Result<AtenaResult> RunAtena(const Dataset& dataset,
                             const AtenaOptions& options) {
  EdaEnvironment env(dataset, options.env);

  ATENA_ASSIGN_OR_RETURN(auto reward,
                         MakeStandardReward(&env, options.reward));
  env.SetRewardSignal(reward.get());

  TwofoldPolicy policy(env.observation_dim(), env.action_space(),
                       options.policy);
  ATENA_LOG(kInfo) << "ATENA(" << dataset.info.id
                   << "): pre-output width=" << policy.pre_output_width()
                   << ", parameters=" << policy.NumParameters();

  PpoTrainer trainer(&env, &policy, options.trainer);
  AtenaResult result;
  result.training = trainer.Train();
  result.reward = reward;

  // The highest-reward episode becomes the published notebook (paper §3).
  double replay_reward = 0.0;
  result.notebook = ReplayOperations(&env, result.training.best_episode_ops,
                                     "ATENA", &replay_reward);
  ATENA_LOG(kInfo) << "ATENA(" << dataset.info.id << "): best episode reward "
                   << result.training.best_episode_reward << " over "
                   << result.training.episodes << " episodes";
  return result;
}

Result<AtenaResult> RunAtena(const Dataset& dataset) {
  return RunAtena(dataset, AtenaOptions());
}

void ApplyTrainStepsFromEnv(AtenaOptions* options) {
  const char* steps = std::getenv("ATENA_TRAIN_STEPS");
  if (steps == nullptr) return;
  int64_t value = 0;
  if (ParseInt64(steps, &value) && value > 0) {
    options->trainer.total_steps = static_cast<int>(value);
  }
}

}  // namespace atena
