#include "core/atena.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "common/logging.h"
#include "common/string_utils.h"
#include "rl/parallel_trainer.h"

namespace atena {

Result<AtenaResult> RunAtena(const Dataset& dataset,
                             const AtenaOptions& options) {
  const int num_actors = std::max(1, options.num_actors);
  std::vector<std::unique_ptr<EdaEnvironment>> envs;
  envs.reserve(static_cast<size_t>(num_actors));
  for (int e = 0; e < num_actors; ++e) {
    EnvConfig config = options.env;
    config.seed = options.env.seed + static_cast<uint64_t>(e);
    envs.push_back(std::make_unique<EdaEnvironment>(dataset, config));
  }
  EdaEnvironment& env = *envs[0];

  // The coherency classifier is trained and the component weights are
  // calibrated once, on the first actor's environment; the extra actors
  // reuse both. Reward signals themselves are stateful (they remember the
  // previous display), so each actor gets its own CompoundReward clone —
  // a shared instance would be stepped concurrently.
  ATENA_ASSIGN_OR_RETURN(auto reward,
                         MakeStandardReward(&env, options.reward));
  env.SetRewardSignal(reward.get());
  std::vector<std::unique_ptr<CompoundReward>> actor_rewards;
  for (int e = 1; e < num_actors; ++e) {
    actor_rewards.push_back(std::make_unique<CompoundReward>(
        reward->coherency(), reward->options()));
    envs[static_cast<size_t>(e)]->SetRewardSignal(actor_rewards.back().get());
  }

  TwofoldPolicy policy(env.observation_dim(), env.action_space(),
                       options.policy);
  ATENA_LOG(kInfo) << "ATENA(" << dataset.info.id
                   << "): pre-output width=" << policy.pre_output_width()
                   << ", parameters=" << policy.NumParameters();

  std::vector<EdaEnvironment*> env_ptrs;
  env_ptrs.reserve(envs.size());
  for (const auto& e : envs) env_ptrs.push_back(e.get());
  ParallelPpoTrainer trainer(env_ptrs, &policy, options.trainer);
  if (num_actors > 1) {
    ATENA_LOG(kInfo) << "ATENA(" << dataset.info.id << "): " << num_actors
                     << " actors, " << trainer.num_threads()
                     << " stepping threads";
  }
  AtenaResult result;
  result.training = trainer.Train();
  result.reward = reward;

  // The highest-reward episode becomes the published notebook (paper §3).
  double replay_reward = 0.0;
  result.notebook = ReplayOperations(&env, result.training.best_episode_ops,
                                     "ATENA", &replay_reward);
  ATENA_LOG(kInfo) << "ATENA(" << dataset.info.id << "): best episode reward "
                   << result.training.best_episode_reward << " over "
                   << result.training.episodes << " episodes";
  return result;
}

Result<AtenaResult> RunAtena(const Dataset& dataset) {
  return RunAtena(dataset, AtenaOptions());
}

void ApplyTrainStepsFromEnv(AtenaOptions* options) {
  const char* steps = std::getenv("ATENA_TRAIN_STEPS");
  if (steps == nullptr) return;
  int64_t value = 0;
  if (ParseInt64(steps, &value) && value > 0) {
    options->trainer.total_steps = static_cast<int>(value);
  }
}

}  // namespace atena
