#include "coherency/rules.h"

#include <algorithm>
#include <unordered_set>

#include "dataframe/stats.h"

namespace atena {

namespace {

/// Distinct-value ratio of each column over the full table, used to decide
/// whether a column is "continuous" (many distinct numeric values) or
/// "id-like" (nearly unique). Computed once per rule set.
std::vector<double> DistinctRatios(const Table& table) {
  std::vector<double> ratios(static_cast<size_t>(table.num_columns()), 0.0);
  auto rows = AllRows(table).value();
  for (int c = 0; c < table.num_columns(); ++c) {
    ColumnStats stats = ComputeColumnStats(*table.column(c), rows);
    ratios[static_cast<size_t>(c)] =
        table.num_rows() > 0
            ? static_cast<double>(stats.distinct) /
                  static_cast<double>(table.num_rows())
            : 0.0;
  }
  return ratios;
}

bool OpEquals(const EdaOperation& a, const EdaOperation& b) {
  if (a.type != b.type) return false;
  switch (a.type) {
    case OpType::kBack:
      return true;
    case OpType::kFilter:
      return a.filter.column == b.filter.column && a.filter.op == b.filter.op &&
             a.filter.term == b.filter.term;
    case OpType::kGroup:
      return a.group.group_column == b.group.group_column &&
             a.group.agg == b.group.agg &&
             a.group.agg_column == b.group.agg_column;
  }
  return false;
}

}  // namespace

std::vector<LabelingFunctionPtr> GeneralCoherencyRules(TablePtr table) {
  std::vector<LabelingFunctionPtr> rules;
  auto ratios = std::make_shared<std::vector<double>>(DistinctRatios(*table));
  auto types = std::make_shared<std::vector<DataType>>();
  for (int c = 0; c < table->num_columns(); ++c) {
    types->push_back(table->column(c)->type());
  }

  rules.push_back(MakeLf("group_too_deep", [](const RewardContext& ctx) {
    if (ctx.op->type != OpType::kGroup) return LfVote::kAbstain;
    const auto& display = ctx.env->current_display();
    if (static_cast<int>(display.group_columns.size()) > 4) {
      return LfVote::kIncoherent;
    }
    if (display.group_columns.size() <= 2) return LfVote::kCoherent;
    return LfVote::kAbstain;
  }));

  rules.push_back(
      MakeLf("group_on_continuous", [ratios, types](const RewardContext& ctx) {
        if (ctx.op->type != OpType::kGroup) return LfVote::kAbstain;
        int c = ctx.op->group.group_column;
        if (c < 0 || c >= static_cast<int>(types->size())) {
          return LfVote::kAbstain;
        }
        bool numeric = (*types)[static_cast<size_t>(c)] != DataType::kString;
        if (numeric && (*ratios)[static_cast<size_t>(c)] > 0.2) {
          return LfVote::kIncoherent;
        }
        return LfVote::kAbstain;
      }));

  rules.push_back(
      MakeLf("group_on_id_like", [ratios](const RewardContext& ctx) {
        if (ctx.op->type != OpType::kGroup) return LfVote::kAbstain;
        int c = ctx.op->group.group_column;
        if (c < 0 || c >= static_cast<int>(ratios->size())) {
          return LfVote::kAbstain;
        }
        // Nearly one distinct value per row: grouping yields singletons.
        if ((*ratios)[static_cast<size_t>(c)] > 0.9) return LfVote::kIncoherent;
        return LfVote::kAbstain;
      }));

  rules.push_back(
      MakeLf("filter_on_id_like", [ratios](const RewardContext& ctx) {
        if (ctx.op->type != OpType::kFilter) return LfVote::kAbstain;
        int c = ctx.op->filter.column;
        if (c < 0 || c >= static_cast<int>(ratios->size())) {
          return LfVote::kAbstain;
        }
        // Predicates over row identifiers tell a reader nothing.
        if ((*ratios)[static_cast<size_t>(c)] > 0.9) return LfVote::kIncoherent;
        return LfVote::kAbstain;
      }));

  rules.push_back(
      MakeLf("negligible_filter_effect", [](const RewardContext& ctx) {
        if (ctx.op->type != OpType::kFilter || !ctx.valid) {
          return LfVote::kAbstain;
        }
        const auto& display = ctx.env->current_display();
        const auto& previous = ctx.env->previous_display();
        if (previous.rows.empty()) return LfVote::kAbstain;
        double kept = static_cast<double>(display.rows.size()) /
                      static_cast<double>(previous.rows.size());
        // Shaving off a sliver of the data (e.g. `id != 176`, or negating
        // one minor token) is splitting hairs, not exploring.
        if (kept > 0.9) return LfVote::kIncoherent;
        return LfVote::kAbstain;
      }));

  rules.push_back(
      MakeLf("selective_filter", [ratios](const RewardContext& ctx) {
        if (ctx.op->type != OpType::kFilter || !ctx.valid) {
          return LfVote::kAbstain;
        }
        int c = ctx.op->filter.column;
        if (c >= 0 && c < static_cast<int>(ratios->size()) &&
            (*ratios)[static_cast<size_t>(c)] > 0.5) {
          // Quasi-key column: a mid-sized cut is easy to produce but means
          // nothing; leave the verdict to the key-specific rules.
          return LfVote::kAbstain;
        }
        const auto& display = ctx.env->current_display();
        const auto& previous = ctx.env->previous_display();
        if (previous.rows.empty()) return LfVote::kAbstain;
        double kept = static_cast<double>(display.rows.size()) /
                      static_cast<double>(previous.rows.size());
        // Experts drill into substantial slices (a dominant protocol, a
        // month, a noisy host) — not into single rows, and not into
        // near-everything.
        if (kept >= 0.02 && kept <= 0.7) return LfVote::kCoherent;
        return LfVote::kAbstain;
      }));

  rules.push_back(
      MakeLf("group_low_cardinality",
             [ratios, types](const RewardContext& ctx) {
               if (ctx.op->type != OpType::kGroup) return LfVote::kAbstain;
               int c = ctx.op->group.group_column;
               if (c < 0 || c >= static_cast<int>(ratios->size())) {
                 return LfVote::kAbstain;
               }
               // A categorical key with a handful of values yields the
               // compact breakdowns notebooks are made of.
               bool categorical =
                   (*types)[static_cast<size_t>(c)] == DataType::kString;
               if (categorical && (*ratios)[static_cast<size_t>(c)] < 0.05) {
                 return LfVote::kCoherent;
               }
               return LfVote::kAbstain;
             }));

  rules.push_back(
      MakeLf("numeric_aggregation", [ratios, types](const RewardContext& ctx) {
        if (ctx.op->type != OpType::kGroup) return LfVote::kAbstain;
        if (ctx.op->group.agg == AggFunc::kCount) return LfVote::kAbstain;
        int a = ctx.op->group.agg_column;
        if (a < 0 || a >= static_cast<int>(types->size())) {
          return LfVote::kAbstain;
        }
        // Aggregating a true numeric measure (not an id) reads naturally;
        // aggregating an id-like column is noise.
        if ((*ratios)[static_cast<size_t>(a)] > 0.9) {
          return LfVote::kIncoherent;
        }
        if ((*types)[static_cast<size_t>(a)] != DataType::kString) {
          return LfVote::kCoherent;
        }
        return LfVote::kAbstain;
      }));

  rules.push_back(
      MakeLf("prefer_equality_filter", [](const RewardContext& ctx) {
        if (ctx.op->type != OpType::kFilter) return LfVote::kAbstain;
        // Experts drill down with whole-token equality (or a numeric
        // range); substring predicates are a scripting idiom, not an
        // exploratory one.
        switch (ctx.op->filter.op) {
          case CompareOp::kContains:
          case CompareOp::kStartsWith:
          case CompareOp::kEndsWith:
            return LfVote::kIncoherent;
          default:
            return LfVote::kAbstain;
        }
      }));

  rules.push_back(
      MakeLf("filter_on_uniform_column", [](const RewardContext& ctx) {
        if (ctx.op->type != OpType::kFilter ||
            ctx.op->filter.op != CompareOp::kEq) {
          return LfVote::kAbstain;
        }
        // An equality drill-down is justified by a token that stands out.
        // When the column was near-uniform over many values in the display
        // the filter came from, the chosen token is arbitrary.
        const auto& previous = ctx.env->previous_display();
        const Column& col =
            *ctx.env->table().column(ctx.op->filter.column);
        ColumnStats stats =
            ComputeColumnStats(col, ctx.env->CappedRows(previous));
        if (stats.distinct > 20 && stats.normalized_entropy > 0.95) {
          return LfVote::kIncoherent;
        }
        return LfVote::kAbstain;
      }));

  rules.push_back(
      MakeLf("repeated_filter_column", [](const RewardContext& ctx) {
        if (ctx.op->type != OpType::kFilter) return LfVote::kAbstain;
        // Re-filtering an attribute the display is already filtered on
        // means the earlier predicate was not the one the analyst wanted
        // (experts adjust a predicate by BACKing out, not by stacking
        // corrections).
        const auto& previous = ctx.env->previous_display();
        for (const FilterPred& pred : previous.filters) {
          if (pred.column == ctx.op->filter.column) {
            return LfVote::kIncoherent;
          }
        }
        return LfVote::kAbstain;
      }));

  rules.push_back(
      MakeLf("filter_chain_too_long", [](const RewardContext& ctx) {
        if (ctx.op->type != OpType::kFilter) return LfVote::kAbstain;
        const auto& steps = ctx.env->steps();
        int consecutive = 1;  // the current operation
        for (size_t i = steps.size() - 1; i-- > 0;) {
          if (steps[i].op.type != OpType::kFilter) break;
          ++consecutive;
        }
        if (consecutive >= 4) return LfVote::kIncoherent;
        return LfVote::kAbstain;
      }));

  rules.push_back(MakeLf("repeated_operation", [](const RewardContext& ctx) {
    const auto& steps = ctx.env->steps();
    if (steps.size() < 2) return LfVote::kAbstain;
    const EdaOperation& current = *ctx.op;
    if (current.type == OpType::kBack) return LfVote::kAbstain;
    for (size_t i = 0; i + 1 < steps.size(); ++i) {
      if (OpEquals(steps[i].op, current)) return LfVote::kIncoherent;
    }
    return LfVote::kAbstain;
  }));

  rules.push_back(MakeLf("consecutive_back", [](const RewardContext& ctx) {
    if (ctx.op->type != OpType::kBack) return LfVote::kAbstain;
    const auto& steps = ctx.env->steps();
    if (steps.size() < 2) return LfVote::kIncoherent;  // opening with BACK
    const EdaStep& prev = steps[steps.size() - 2];
    if (prev.op.type == OpType::kBack) return LfVote::kIncoherent;
    return LfVote::kAbstain;
  }));

  rules.push_back(MakeLf("tiny_filter_result", [](const RewardContext& ctx) {
    if (ctx.op->type != OpType::kFilter || !ctx.valid) return LfVote::kAbstain;
    const auto& display = ctx.env->current_display();
    const auto& previous = ctx.env->previous_display();
    if (previous.rows.empty()) return LfVote::kAbstain;
    double kept = static_cast<double>(display.rows.size()) /
                  static_cast<double>(previous.rows.size());
    if (kept < 0.005) return LfVote::kIncoherent;
    return LfVote::kAbstain;
  }));

  rules.push_back(MakeLf("drill_down_pattern", [](const RewardContext& ctx) {
    const auto& steps = ctx.env->steps();
    if (steps.size() < 2) return LfVote::kAbstain;
    OpType current = ctx.op->type;
    OpType prev = steps[steps.size() - 2].op.type;
    // Example 1.1's shape: group → filter on a group key → group again.
    if ((prev == OpType::kFilter && current == OpType::kGroup) ||
        (prev == OpType::kGroup && current == OpType::kFilter)) {
      return LfVote::kCoherent;
    }
    return LfVote::kAbstain;
  }));

  rules.push_back(MakeLf("invalid_noop", [](const RewardContext& ctx) {
    return ctx.valid ? LfVote::kAbstain : LfVote::kIncoherent;
  }));

  return rules;
}

std::vector<LabelingFunctionPtr> FocalAttributeRules(const Dataset& dataset) {
  std::vector<LabelingFunctionPtr> rules;
  auto focal = std::make_shared<std::unordered_set<int>>();
  for (const auto& attr : dataset.info.focal_attributes) {
    int c = dataset.table->FindColumn(attr);
    if (c >= 0) focal->insert(c);
  }
  if (focal->empty()) return rules;
  auto ratios =
      std::make_shared<std::vector<double>>(DistinctRatios(*dataset.table));

  rules.push_back(MakeLf(
      "nonfocal_numeric_range_filter", [focal, ratios](const RewardContext& ctx) {
        if (ctx.op->type != OpType::kFilter) return LfVote::kAbstain;
        const CompareOp op = ctx.op->filter.op;
        const bool ordering = op == CompareOp::kGt || op == CompareOp::kGe ||
                              op == CompareOp::kLt || op == CompareOp::kLe;
        if (!ordering) return LfVote::kAbstain;
        int c = ctx.op->filter.column;
        if (c < 0 || c >= static_cast<int>(ratios->size())) {
          return LfVote::kAbstain;
        }
        // Range predicates make sense on the measures the exploration goal
        // cares about (the focal attributes); an arbitrary threshold on a
        // quasi-key numeric column (flight numbers, packet ids, clock
        // readings) is noise an analyst would never write.
        if (focal->count(c) > 0) return LfVote::kCoherent;
        if ((*ratios)[static_cast<size_t>(c)] > 0.5) {
          return LfVote::kIncoherent;
        }
        return LfVote::kAbstain;
      }));

  rules.push_back(
      MakeLf("focal_aggregation", [focal](const RewardContext& ctx) {
        if (ctx.op->type != OpType::kGroup) return LfVote::kAbstain;
        if (ctx.op->group.agg != AggFunc::kCount &&
            focal->count(ctx.op->group.agg_column) > 0) {
          return LfVote::kCoherent;
        }
        return LfVote::kAbstain;
      }));

  rules.push_back(
      MakeLf("focal_filter_or_group", [focal](const RewardContext& ctx) {
        if (ctx.op->type == OpType::kFilter &&
            focal->count(ctx.op->filter.column) > 0) {
          return LfVote::kCoherent;
        }
        if (ctx.op->type == OpType::kGroup &&
            focal->count(ctx.op->group.group_column) > 0) {
          return LfVote::kCoherent;
        }
        return LfVote::kAbstain;
      }));

  return rules;
}

std::vector<LabelingFunctionPtr> StandardRuleSet(const Dataset& dataset) {
  auto rules = GeneralCoherencyRules(dataset.table);
  auto focal = FocalAttributeRules(dataset);
  rules.insert(rules.end(), focal.begin(), focal.end());
  return rules;
}

}  // namespace atena
