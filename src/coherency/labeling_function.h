#ifndef ATENA_COHERENCY_LABELING_FUNCTION_H_
#define ATENA_COHERENCY_LABELING_FUNCTION_H_

#include <memory>
#include <string>
#include <vector>

#include "eda/environment.h"

namespace atena {

/// A labeling function's vote on one EDA operation in context.
enum class LfVote : int {
  kIncoherent = 0,
  kCoherent = 1,
  kAbstain = 2,
};

/// A heuristic classification rule (paper §4.2): given the session so far
/// and the operation that was just executed, votes on whether that
/// operation is coherent, or abstains. Rules never see ground truth — the
/// generative label model (label_model.h) estimates their accuracies from
/// agreements/disagreements alone, exactly as Snorkel [35] does.
class LabelingFunction {
 public:
  virtual ~LabelingFunction() = default;

  virtual const std::string& name() const = 0;

  /// Votes on the last executed step of `context`. The display history
  /// already includes the operation's result display.
  virtual LfVote Vote(const RewardContext& context) const = 0;
};

using LabelingFunctionPtr = std::shared_ptr<const LabelingFunction>;

/// Convenience adapter for rules expressible as a function object.
template <typename F>
class LambdaLf final : public LabelingFunction {
 public:
  LambdaLf(std::string name, F fn) : name_(std::move(name)), fn_(std::move(fn)) {}
  const std::string& name() const override { return name_; }
  LfVote Vote(const RewardContext& context) const override {
    return fn_(context);
  }

 private:
  std::string name_;
  F fn_;
};

template <typename F>
LabelingFunctionPtr MakeLf(std::string name, F fn) {
  return std::make_shared<LambdaLf<F>>(std::move(name), std::move(fn));
}

}  // namespace atena

#endif  // ATENA_COHERENCY_LABELING_FUNCTION_H_
