#include "coherency/classifier.h"

#include "common/random.h"

namespace atena {

namespace {

/// Anchors the label model on the one rule that is right by construction
/// (no-op actions are never coherent), which keeps EM from flipping the
/// latent classes (see LabelModel::Options::anchor_lf).
LabelModel::Options WithAnchor(LabelModel::Options options,
                               const std::vector<LabelingFunctionPtr>& rules) {
  if (options.anchor_lf >= 0) return options;
  for (size_t j = 0; j < rules.size(); ++j) {
    if (rules[j]->name() == "invalid_noop") {
      options.anchor_lf = static_cast<int>(j);
      break;
    }
  }
  return options;
}

}  // namespace

CoherencyClassifier::CoherencyClassifier(
    std::vector<LabelingFunctionPtr> rules, Options options)
    : rules_(std::move(rules)),
      options_(options),
      model_(static_cast<int>(rules_.size()), WithAnchor(options.model, rules_)) {}

std::vector<LfVote> CoherencyClassifier::CollectVotes(
    const RewardContext& context) const {
  std::vector<LfVote> votes;
  votes.reserve(rules_.size());
  for (const auto& rule : rules_) {
    votes.push_back(rule->Vote(context));
  }
  return votes;
}

double CoherencyClassifier::Score(const RewardContext& context) const {
  std::vector<LfVote> votes = CollectVotes(context);
  if (model_.trained()) {
    return model_.PosteriorCoherent(votes);
  }
  int coherent = 0, incoherent = 0;
  for (LfVote v : votes) {
    if (v == LfVote::kCoherent) ++coherent;
    if (v == LfVote::kIncoherent) ++incoherent;
  }
  if (coherent + incoherent == 0) return 0.5;
  return static_cast<double>(coherent) /
         static_cast<double>(coherent + incoherent);
}

Status CoherencyClassifier::Train(EdaEnvironment* env) {
  if (rules_.empty()) {
    return Status::FailedPrecondition("coherency classifier has no rules");
  }
  // Warmup must not trigger the compound reward (which may itself call this
  // classifier); run reward-free random sessions.
  env->SetRewardSignal(nullptr);
  Rng rng(options_.seed);
  std::vector<std::vector<LfVote>> corpus;
  corpus.reserve(static_cast<size_t>(options_.warmup_episodes) *
                 static_cast<size_t>(env->config().episode_length));
  for (int episode = 0; episode < options_.warmup_episodes; ++episode) {
    env->Reset();
    while (!env->done()) {
      EnvAction action = SampleRandomAction(env->action_space(), &rng);
      StepOutcome outcome = env->Step(action);
      RewardContext context;
      context.env = env;
      context.op = &env->steps().back().op;
      context.valid = outcome.valid;
      corpus.push_back(CollectVotes(context));
    }
  }
  model_.Fit(corpus);
  env->Reset();
  return Status::OK();
}

}  // namespace atena
