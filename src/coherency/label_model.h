#ifndef ATENA_COHERENCY_LABEL_MODEL_H_
#define ATENA_COHERENCY_LABEL_MODEL_H_

#include <vector>

#include "coherency/labeling_function.h"

namespace atena {

/// Snorkel-style generative label model [35] for binary weak supervision.
///
/// Model: a latent true label y ∈ {incoherent, coherent} with prior π; each
/// labeling function j, when it does not abstain, reports the true label
/// with accuracy α_j (conditionally independent given y). Accuracies and
/// the prior are estimated from *unlabeled* vote matrices with EM; the
/// posterior P(y = coherent | votes) is the model's confidence, used
/// directly as the coherency reward (paper §4.2).
class LabelModel {
 public:
  struct Options {
    int max_iterations = 50;
    double tolerance = 1e-6;
    /// Accuracies are clamped into [min_accuracy, max_accuracy] so a single
    /// LF can never become an oracle (numerical stability).
    double min_accuracy = 0.55;
    double max_accuracy = 0.95;
    double initial_accuracy = 0.75;
    /// EM over binary latent labels is unidentified up to a class flip: if
    /// most rules agree on a majority cluster, the minority's votes get
    /// discounted to the accuracy floor even when they are right. Anchoring
    /// pins one trusted LF's accuracy (e.g. a rule that is correct by
    /// construction), which breaks the symmetry. -1 disables.
    int anchor_lf = -1;
    double anchor_accuracy = 0.95;
    /// When false the class prior stays at 0.5 instead of being re-estimated
    /// (random warmup corpora are heavily skewed toward incoherent
    /// operations, which otherwise drags the prior with them).
    bool learn_prior = false;
  };

  explicit LabelModel(int num_lfs) : LabelModel(num_lfs, Options()) {}
  LabelModel(int num_lfs, Options options);

  int num_lfs() const { return static_cast<int>(accuracies_.size()); }
  double accuracy(int lf) const { return accuracies_[lf]; }
  double class_prior() const { return prior_coherent_; }
  bool trained() const { return trained_; }

  /// Fits accuracies and prior on a corpus of vote vectors (one vector of
  /// LfVote per example, length num_lfs). Examples where every LF abstains
  /// carry no signal and are skipped. Returns the number of EM iterations
  /// performed.
  int Fit(const std::vector<std::vector<LfVote>>& corpus);

  /// Posterior probability that the example is coherent. An all-abstain
  /// vote vector returns the class prior.
  double PosteriorCoherent(const std::vector<LfVote>& votes) const;

 private:
  Options options_;
  std::vector<double> accuracies_;
  double prior_coherent_ = 0.5;
  bool trained_ = false;
};

}  // namespace atena

#endif  // ATENA_COHERENCY_LABEL_MODEL_H_
