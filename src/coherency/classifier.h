#ifndef ATENA_COHERENCY_CLASSIFIER_H_
#define ATENA_COHERENCY_CLASSIFIER_H_

#include <vector>

#include "coherency/label_model.h"
#include "coherency/labeling_function.h"
#include "common/status.h"

namespace atena {

/// The coherency classifier (paper §4.2): a set of labeling functions plus
/// a generative label model. Training needs no annotated data — a warmup
/// corpus of random sessions provides unlabeled examples from which the
/// label model estimates rule accuracies via EM.
class CoherencyClassifier {
 public:
  struct Options {
    /// Random episodes used to build the unlabeled warmup corpus.
    int warmup_episodes = 30;
    uint64_t seed = 99;
    LabelModel::Options model;
  };

  explicit CoherencyClassifier(std::vector<LabelingFunctionPtr> rules)
      : CoherencyClassifier(std::move(rules), Options()) {}
  CoherencyClassifier(std::vector<LabelingFunctionPtr> rules,
                      Options options);

  int num_rules() const { return static_cast<int>(rules_.size()); }
  const LabelModel& model() const { return model_; }
  bool trained() const { return model_.trained(); }

  /// Generates `options.warmup_episodes` random sessions on `env`, collects
  /// the rules' votes after every step, and fits the label model. The
  /// environment's reward signal is detached during warmup and restored
  /// afterwards; the environment is left reset.
  Status Train(EdaEnvironment* env);

  /// Rule votes for the just-executed step.
  std::vector<LfVote> CollectVotes(const RewardContext& context) const;

  /// The coherency signal in [0,1]: P(coherent | votes) under the label
  /// model. Falls back to unweighted majority vote when untrained.
  double Score(const RewardContext& context) const;

 private:
  std::vector<LabelingFunctionPtr> rules_;
  Options options_;
  LabelModel model_;
};

}  // namespace atena

#endif  // ATENA_COHERENCY_CLASSIFIER_H_
