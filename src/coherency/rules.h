#ifndef ATENA_COHERENCY_RULES_H_
#define ATENA_COHERENCY_RULES_H_

#include <vector>

#include "coherency/labeling_function.h"
#include "data/dataset.h"

namespace atena {

/// The general (dataset-agnostic) classification rules (paper §4.2 type i):
///  * group_too_deep       — grouping by more than four attributes.
///  * group_on_continuous  — grouping by a continuous numeric attribute.
///  * group_on_id_like     — grouping/aggregating by a nearly-unique column.
///  * repeated_operation   — re-executing an operation already in the session.
///  * consecutive_back     — BACK immediately after BACK (or as the opener).
///  * tiny_filter_result   — a filter keeping under 0.5% of the display.
///  * drill_down_pattern   — filter-then-group or group-then-filter chains
///                           (votes coherent: the paper's Example 1.1 shape).
///  * invalid_noop         — no-op actions are incoherent.
std::vector<LabelingFunctionPtr> GeneralCoherencyRules(TablePtr table);

/// Data-dependent rules derived from the dataset's focal attributes
/// (paper §4.2 type ii): operations that aggregate, filter or group on a
/// focal attribute vote coherent; aggregating on non-focal, id-like columns
/// votes incoherent.
std::vector<LabelingFunctionPtr> FocalAttributeRules(const Dataset& dataset);

/// General + data-dependent rules for `dataset`.
std::vector<LabelingFunctionPtr> StandardRuleSet(const Dataset& dataset);

}  // namespace atena

#endif  // ATENA_COHERENCY_RULES_H_
