#include "coherency/label_model.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_utils.h"

namespace atena {

LabelModel::LabelModel(int num_lfs, Options options)
    : options_(options),
      accuracies_(static_cast<size_t>(num_lfs), options.initial_accuracy) {
  if (options_.anchor_lf >= 0 && options_.anchor_lf < num_lfs) {
    accuracies_[static_cast<size_t>(options_.anchor_lf)] =
        options_.anchor_accuracy;
  }
}

double LabelModel::PosteriorCoherent(const std::vector<LfVote>& votes) const {
  // Work in log space: log P(y) + sum over non-abstaining LFs of
  // log P(vote_j | y).
  double log_coherent = std::log(Clamp(prior_coherent_, 1e-6, 1.0 - 1e-6));
  double log_incoherent =
      std::log(Clamp(1.0 - prior_coherent_, 1e-6, 1.0 - 1e-6));
  bool any_vote = false;
  for (size_t j = 0; j < votes.size() && j < accuracies_.size(); ++j) {
    if (votes[j] == LfVote::kAbstain) continue;
    any_vote = true;
    const double a = accuracies_[j];
    if (votes[j] == LfVote::kCoherent) {
      log_coherent += std::log(a);
      log_incoherent += std::log(1.0 - a);
    } else {
      log_coherent += std::log(1.0 - a);
      log_incoherent += std::log(a);
    }
  }
  if (!any_vote) return prior_coherent_;
  const double m = std::max(log_coherent, log_incoherent);
  const double zc = std::exp(log_coherent - m);
  const double zi = std::exp(log_incoherent - m);
  return zc / (zc + zi);
}

int LabelModel::Fit(const std::vector<std::vector<LfVote>>& corpus) {
  std::vector<const std::vector<LfVote>*> informative;
  for (const auto& votes : corpus) {
    for (LfVote v : votes) {
      if (v != LfVote::kAbstain) {
        informative.push_back(&votes);
        break;
      }
    }
  }
  if (informative.empty()) {
    ATENA_LOG(kWarning) << "LabelModel::Fit: corpus has no informative votes";
    trained_ = true;
    return 0;
  }

  int iterations = 0;
  for (; iterations < options_.max_iterations; ++iterations) {
    // E-step: posterior responsibility of "coherent" per example.
    std::vector<double> responsibilities;
    responsibilities.reserve(informative.size());
    for (const auto* votes : informative) {
      responsibilities.push_back(PosteriorCoherent(*votes));
    }

    // M-step: accuracy = expected fraction of non-abstain votes matching
    // the (soft) latent label; prior = mean responsibility.
    double prior_num = 0.0;
    std::vector<double> match(accuracies_.size(), 0.0);
    std::vector<double> total(accuracies_.size(), 0.0);
    for (size_t i = 0; i < informative.size(); ++i) {
      const auto& votes = *informative[i];
      const double r = responsibilities[i];
      prior_num += r;
      for (size_t j = 0; j < votes.size() && j < accuracies_.size(); ++j) {
        if (votes[j] == LfVote::kAbstain) continue;
        total[j] += 1.0;
        match[j] += (votes[j] == LfVote::kCoherent) ? r : (1.0 - r);
      }
    }

    double delta = 0.0;
    if (options_.learn_prior) {
      double new_prior = Clamp(
          prior_num / static_cast<double>(informative.size()), 0.05, 0.95);
      delta = std::fabs(new_prior - prior_coherent_);
      prior_coherent_ = new_prior;
    }
    for (size_t j = 0; j < accuracies_.size(); ++j) {
      if (static_cast<int>(j) == options_.anchor_lf) continue;  // pinned
      if (total[j] < 1.0) continue;  // LF never voted; keep its prior accuracy
      double updated = Clamp(match[j] / total[j], options_.min_accuracy,
                             options_.max_accuracy);
      delta = std::max(delta, std::fabs(updated - accuracies_[j]));
      accuracies_[j] = updated;
    }
    if (delta < options_.tolerance) {
      ++iterations;
      break;
    }
  }
  trained_ = true;
  return iterations;
}

}  // namespace atena
