#include "data/flights.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"

namespace atena {

namespace {

const std::vector<std::string> kMonths = {
    "January", "February", "March",     "April",   "May",      "June",
    "July",    "August",   "September", "October", "November", "December"};

const std::vector<std::string> kDays = {"Monday",   "Tuesday", "Wednesday",
                                        "Thursday", "Friday",  "Saturday",
                                        "Sunday"};

const std::vector<std::string> kAirlines = {"AA", "DL", "UA", "WN",
                                            "B6", "NK", "AS"};

const std::vector<std::string> kAirports = {"ATL", "LAX", "ORD", "DFW", "JFK",
                                            "SFO", "BOS", "SEA", "DEN", "MIA"};

double MonthEffect(const std::string& month) {
  if (month == "June") return 18.0;
  if (month == "July") return 10.0;
  if (month == "December") return 8.0;
  if (month == "January") return 4.0;
  return 0.0;
}

double AirlineEffect(const std::string& airline) {
  if (airline == "NK") return 12.0;
  if (airline == "B6") return 6.0;
  if (airline == "WN") return 3.0;
  if (airline == "UA") return 1.0;
  if (airline == "DL") return -2.0;
  if (airline == "AS") return -3.0;
  return 0.0;  // AA
}

double AirportEffect(const std::string& airport, const std::string& month) {
  double effect = 0.0;
  if (airport == "ATL") effect = 9.0;
  if (airport == "LAX") effect = 8.0;
  if (airport == "ORD") effect = 6.0;
  if (airport == "JFK") effect = 5.0;
  // The paper's running example: June delays concentrate at LAX and ATL.
  if (month == "June" && (airport == "LAX" || airport == "ATL")) {
    effect += 10.0;
  }
  return effect;
}

double DayEffect(const std::string& day) {
  if (day == "Thursday") return 9.0;
  if (day == "Friday") return 6.0;
  if (day == "Sunday") return 4.0;
  return 0.0;
}

bool IsNight(int64_t hhmm) { return hhmm >= 2200 || hhmm < 500; }

/// Constraints a dataset places on the generated population (the paper's
/// datasets are pre-filtered subsets of the Kaggle database).
struct FlightConstraints {
  std::optional<std::string> airline;
  std::optional<std::string> day_of_week;
  std::optional<std::string> origin;
  std::optional<std::string> destination;
  bool short_night_only = false;  // distance <= 500 and night departure
};

Result<Dataset> MakeFlights(DatasetInfo info, int64_t target_rows,
                            const FlightConstraints& cons, uint64_t seed) {
  Rng rng(seed * 0x200009 + 23);
  TableBuilder builder(info.id);
  builder.AddColumn("flight_id", DataType::kInt64);
  builder.AddColumn("month", DataType::kString);
  builder.AddColumn("day_of_week", DataType::kString);
  builder.AddColumn("airline", DataType::kString);
  builder.AddColumn("flight_number", DataType::kInt64);
  builder.AddColumn("origin_airport", DataType::kString);
  builder.AddColumn("destination_airport", DataType::kString);
  builder.AddColumn("scheduled_departure", DataType::kInt64);
  builder.AddColumn("departure_delay", DataType::kFloat64);
  builder.AddColumn("arrival_delay", DataType::kFloat64);
  builder.AddColumn("distance", DataType::kInt64);
  builder.AddColumn("air_time", DataType::kFloat64);
  builder.AddColumn("delay_reason", DataType::kString);

  const std::vector<std::string> reasons = {"Carrier", "Weather",
                                            "Late Aircraft", "NAS", "Security"};
  for (int64_t i = 0; i < target_rows; ++i) {
    const std::string& month = kMonths[rng.NextZipf(kMonths.size(), 0.2)];
    std::string day =
        cons.day_of_week ? *cons.day_of_week : kDays[rng.NextBounded(7)];
    std::string airline =
        cons.airline ? *cons.airline
                     : kAirlines[rng.NextZipf(kAirlines.size(), 0.5)];
    std::string origin =
        cons.origin ? *cons.origin
                    : kAirports[rng.NextZipf(kAirports.size(), 0.6)];
    std::string dest;
    if (cons.destination) {
      dest = *cons.destination;
    } else {
      do {
        dest = kAirports[rng.NextZipf(kAirports.size(), 0.6)];
      } while (dest == origin);
    }

    int64_t hhmm;
    int64_t distance;
    if (cons.short_night_only) {
      int hour = static_cast<int>(rng.NextInt(0, 6));  // 22,23,0..4
      hhmm = (hour <= 1 ? 22 + hour : hour - 2) * 100 + rng.NextInt(0, 59);
      distance = rng.NextInt(100, 500);
    } else {
      hhmm = rng.NextInt(5, 23) * 100 + rng.NextInt(0, 59);
      distance = rng.NextInt(150, 2800);
      if (cons.origin && cons.destination) distance = rng.NextInt(330, 350);
    }

    double base = 6.0 + MonthEffect(month) + AirlineEffect(airline) +
                  AirportEffect(origin, month) + DayEffect(day) +
                  (IsNight(hhmm) ? -5.0 : 0.0);
    double delay = base + rng.NextGaussian() * 12.0;
    if (rng.NextBool(0.05)) delay += rng.NextDouble(40.0, 180.0);  // irregular ops
    delay = std::max(-12.0, delay);
    double arrival = delay + rng.NextGaussian() * 8.0 - 3.0;
    double air_time = static_cast<double>(distance) / 7.5 +
                      rng.NextGaussian() * 6.0 + 18.0;

    std::string reason = "None";
    if (delay > 5.0) {
      std::vector<double> w = {0.34, 0.18, 0.27, 0.18, 0.03};
      if (month == "June" || month == "July") w[1] += 0.25;  // summer weather
      reason = reasons[rng.SampleDiscrete(w)];
    }

    ATENA_RETURN_IF_ERROR(builder.AppendRow(
        {Value(i + 1), Value(month), Value(day), Value(airline),
         Value(rng.NextInt(100, 2999)), Value(origin), Value(dest),
         Value(hhmm), Value(delay), Value(arrival), Value(distance),
         Value(std::max(20.0, air_time)), Value(reason)}));
  }

  Dataset dataset;
  dataset.info = std::move(info);
  ATENA_ASSIGN_OR_RETURN(dataset.table, builder.Finish());
  return dataset;
}

DatasetInfo FlightsInfo(std::string id, std::string title,
                        std::string description) {
  return DatasetInfo{
      .id = std::move(id),
      .title = std::move(title),
      .description = std::move(description),
      .domain = "flight-delays",
      .focal_attributes = {"departure_delay", "arrival_delay"},
  };
}

}  // namespace

Result<Dataset> MakeFlights1(uint64_t seed, int scale_factor) {
  FlightConstraints cons;
  cons.airline = "AA";
  cons.day_of_week = "Sunday";
  return MakeFlights(FlightsInfo("flights1", "Flights #1",
                                 "AA Flights on Sundays"),
                     5661 * static_cast<int64_t>(std::max(1, scale_factor)),
                     cons, seed);
}

Result<Dataset> MakeFlights2(uint64_t seed, int scale_factor) {
  FlightConstraints cons;
  cons.origin = "BOS";
  return MakeFlights(FlightsInfo("flights2", "Flights #2",
                                 "Flights departing from BOS"),
                     8172 * static_cast<int64_t>(std::max(1, scale_factor)),
                     cons, seed);
}

Result<Dataset> MakeFlights3(uint64_t seed, int scale_factor) {
  FlightConstraints cons;
  cons.origin = "SFO";
  cons.destination = "LAX";
  return MakeFlights(FlightsInfo("flights3", "Flights #3", "From SFO to LAX"),
                     1082 * static_cast<int64_t>(std::max(1, scale_factor)),
                     cons, seed);
}

Result<Dataset> MakeFlights4(uint64_t seed, int scale_factor) {
  FlightConstraints cons;
  cons.short_night_only = true;
  return MakeFlights(FlightsInfo("flights4", "Flights #4",
                                 "Short, night-time flights"),
                     2175 * static_cast<int64_t>(std::max(1, scale_factor)),
                     cons, seed);
}

}  // namespace atena
