#ifndef ATENA_DATA_CYBER_H_
#define ATENA_DATA_CYBER_H_

#include "common/status.h"
#include "data/dataset.h"

namespace atena {

/// Synthetic equivalents of the paper's four cyber-analytics challenge
/// datasets [43]. Each plants a specific attack inside realistic background
/// traffic; the planted facts double as the ground-truth insight lists used
/// by the Figure 4b benchmark (see eval/insights.h). Row counts match
/// Table 1. Generation is deterministic in (seed, scale_factor).
///
/// `scale_factor` multiplies every section's row count (sweep passes,
/// background events, capture window) so the same attack story plays out
/// over scale× the traffic — the paper's real workloads are millions of
/// rows, and the dataframe kernels are benchmarked at that size. A factor
/// of 1 reproduces the legacy table bit-for-bit; 100–1000 reach 1M+ rows.

/// Cyber #1 — 8648·scale rows. ICMP scan: attacker 10.0.66.66 ping-sweeps
/// 192.168.1.0/24; three exposed hosts reply; normal TCP/DNS background.
Result<Dataset> MakeCyber1(uint64_t seed = 1, int scale_factor = 1);

/// Cyber #2 — 348·scale rows. Remote-code-execution attack: 203.0.113.99
/// posts shellshock-style payloads to /cgi-bin/status.cgi on web server
/// 192.168.2.10, then exfiltrates; normal browsing background.
Result<Dataset> MakeCyber2(uint64_t seed = 2, int scale_factor = 1);

/// Cyber #3 — 745·scale rows. Web phishing: employees are lured from a
/// webmail referrer to secure-bank1-login.xyz, which mimics bank1.com and
/// harvests credentials via POST /login.php.
Result<Dataset> MakeCyber3(uint64_t seed = 3, int scale_factor = 1);

/// Cyber #4 — 13625·scale rows. TCP port scan: 172.16.0.99 SYN-scans ports
/// 1..1024 on 192.168.10.5; open ports 22/80/443/445 answer SYN-ACK,
/// closed ports answer RST.
Result<Dataset> MakeCyber4(uint64_t seed = 4, int scale_factor = 1);

}  // namespace atena

#endif  // ATENA_DATA_CYBER_H_
