#include "data/cyber.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/string_utils.h"

namespace atena {

namespace {

std::string Ip(int a, int b, int c, int d) {
  return std::to_string(a) + "." + std::to_string(b) + "." +
         std::to_string(c) + "." + std::to_string(d);
}

using Row = std::vector<Value>;

/// Sorts rows by the timestamp in column `time_col` and rewrites the id in
/// column 0 to be 1-based in time order, like a packet capture export.
void FinalizeEventLog(std::vector<Row>* rows, int time_col) {
  std::sort(rows->begin(), rows->end(), [time_col](const Row& x, const Row& y) {
    return x[time_col].as_double() < y[time_col].as_double();
  });
  for (size_t i = 0; i < rows->size(); ++i) {
    (*rows)[i][0] = Value(static_cast<int64_t>(i + 1));
  }
}

Result<Dataset> FinishDataset(DatasetInfo info, TableBuilder* builder) {
  Dataset dataset;
  dataset.info = std::move(info);
  ATENA_ASSIGN_OR_RETURN(dataset.table, builder->Finish());
  return dataset;
}

}  // namespace

Result<Dataset> MakeCyber1(uint64_t seed, int scale_factor) {
  const int scale = std::max(1, scale_factor);
  Rng rng(seed * 0x100001 + 11);
  const std::string attacker = Ip(10, 0, 66, 66);
  const std::vector<int> exposed = {5, 17, 33};  // hosts answering the sweep

  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(8648) * static_cast<size_t>(scale));

  // The sweep: 20·scale passes over 192.168.1.1..254 in a burst window.
  // 5080·scale rows. Scaling multiplies loop bounds (and the background
  // capture window below) only, so scale == 1 reproduces the legacy table
  // bit-for-bit and the RNG consumption order per section is unchanged.
  for (int pass = 0; pass < 20 * scale; ++pass) {
    for (int host = 1; host <= 254; ++host) {
      double t = 200.0 + pass * 6.0 + host * 0.02 + rng.NextDouble() * 0.01;
      rows.push_back({Value(int64_t{0}), Value(t), Value(attacker),
                      Value(Ip(192, 168, 1, host)), Value(std::string("ICMP")),
                      Value(int64_t{74}), Value(int64_t{64}),
                      Value(std::string("Echo (ping) request"))});
    }
  }
  // Replies from the three exposed hosts. 60·scale rows.
  for (int pass = 0; pass < 20 * scale; ++pass) {
    for (int host : exposed) {
      double t = 200.0 + pass * 6.0 + host * 0.02 + 0.005;
      rows.push_back({Value(int64_t{0}), Value(t), Value(Ip(192, 168, 1, host)),
                      Value(attacker), Value(std::string("ICMP")),
                      Value(int64_t{74}), Value(int64_t{128}),
                      Value(std::string("Echo (ping) reply"))});
    }
  }
  // Background office traffic. 3508·scale rows over a scale× window.
  const std::vector<std::string> protocols = {"TCP", "DNS", "ARP", "UDP"};
  const std::vector<double> proto_weights = {0.62, 0.22, 0.06, 0.10};
  const std::vector<std::string> tcp_infos = {"SYN", "SYN, ACK", "ACK",
                                              "PSH, ACK", "FIN, ACK",
                                              "HTTP GET /index.html"};
  const std::vector<std::string> dns_hosts = {
      "corp.local", "update.vendor.com", "mail.corp.local", "www.news.org"};
  for (int i = 0; i < 3508 * scale; ++i) {
    double t = rng.NextDouble() * (600.0 * scale);
    int src = static_cast<int>(rng.NextInt(10, 60));
    int dst = static_cast<int>(rng.NextInt(10, 60));
    const std::string& proto = protocols[rng.SampleDiscrete(proto_weights)];
    std::string info;
    int64_t length = 0;
    if (proto == "TCP") {
      info = tcp_infos[rng.NextBounded(tcp_infos.size())];
      length = rng.NextInt(60, 1514);
    } else if (proto == "DNS") {
      info = "Standard query A " + dns_hosts[rng.NextZipf(dns_hosts.size(), 1.0)];
      length = rng.NextInt(60, 140);
    } else if (proto == "ARP") {
      info = "Who has " + Ip(192, 168, 1, static_cast<int>(rng.NextInt(1, 254)));
      length = 42;
    } else {
      info = "UDP payload";
      length = rng.NextInt(60, 512);
    }
    rows.push_back({Value(int64_t{0}), Value(t), Value(Ip(192, 168, 1, src)),
                    Value(Ip(192, 168, 1, dst)), Value(proto), Value(length),
                    Value(int64_t{64}), Value(info)});
  }

  FinalizeEventLog(&rows, 1);

  TableBuilder builder("cyber1");
  builder.AddColumn("packet_id", DataType::kInt64);
  builder.AddColumn("timestamp", DataType::kFloat64);
  builder.AddColumn("source_ip", DataType::kString);
  builder.AddColumn("destination_ip", DataType::kString);
  builder.AddColumn("protocol", DataType::kString);
  builder.AddColumn("length", DataType::kInt64);
  builder.AddColumn("ttl", DataType::kInt64);
  builder.AddColumn("info", DataType::kString);
  for (const Row& row : rows) {
    ATENA_RETURN_IF_ERROR(builder.AppendRow(row));
  }
  DatasetInfo info{
      .id = "cyber1",
      .title = "Cyber #1",
      .description = "ICMP scan on IP range",
      .domain = "cyber-security",
      .focal_attributes = {"source_ip", "destination_ip"},
  };
  return FinishDataset(std::move(info), &builder);
}

Result<Dataset> MakeCyber2(uint64_t seed, int scale_factor) {
  const int scale = std::max(1, scale_factor);
  Rng rng(seed * 0x100003 + 13);
  const std::string attacker = Ip(203, 0, 113, 99);
  const std::string server = Ip(192, 168, 2, 10);
  const std::string shellshock_ua =
      "() { :; }; /bin/bash -c 'cat /etc/passwd'";

  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(348) * static_cast<size_t>(scale));

  // Normal browsing: 308·scale requests from a dozen internal clients.
  const std::vector<std::string> uris = {"/index.html",      "/news.html",
                                         "/about.html",      "/products.html",
                                         "/images/logo.png", "/style.css"};
  const std::vector<std::string> agents = {
      "Mozilla/5.0 (Windows NT 10.0)", "Mozilla/5.0 (X11; Linux x86_64)",
      "Mozilla/5.0 (Macintosh; Intel Mac OS X)"};
  for (int i = 0; i < 308 * scale; ++i) {
    double t = rng.NextDouble() * (3600.0 * scale);
    int client = static_cast<int>(rng.NextInt(20, 31));
    const std::string& uri = uris[rng.NextZipf(uris.size(), 1.1)];
    int64_t status = rng.NextBool(0.94) ? 200 : 404;
    rows.push_back(
        {Value(int64_t{0}), Value(t), Value(Ip(192, 168, 2, client)),
         Value(server), Value(std::string("GET")), Value(uri),
         Value(agents[rng.NextBounded(agents.size())]), Value(status),
         Value(rng.NextInt(300, 24000))});
  }
  // The attack: 40·scale shellshock-style requests against the CGI
  // endpoint, with growing response sizes as the attacker moves from
  // probing to exfiltration.
  for (int i = 0; i < 40 * scale; ++i) {
    double t = 1800.0 + i * 14.0 + rng.NextDouble() * 3.0;
    bool exfil = i >= 25 * scale;
    rows.push_back(
        {Value(int64_t{0}), Value(t), Value(attacker), Value(server),
         Value(std::string(exfil ? "POST" : "GET")),
         Value(std::string("/cgi-bin/status.cgi")), Value(shellshock_ua),
         Value(int64_t{200}),
         Value(exfil ? rng.NextInt(200000, 900000) : rng.NextInt(800, 4000))});
  }

  FinalizeEventLog(&rows, 1);

  TableBuilder builder("cyber2");
  builder.AddColumn("request_id", DataType::kInt64);
  builder.AddColumn("timestamp", DataType::kFloat64);
  builder.AddColumn("source_ip", DataType::kString);
  builder.AddColumn("destination_ip", DataType::kString);
  builder.AddColumn("method", DataType::kString);
  builder.AddColumn("uri", DataType::kString);
  builder.AddColumn("user_agent", DataType::kString);
  builder.AddColumn("status", DataType::kInt64);
  builder.AddColumn("response_bytes", DataType::kInt64);
  for (const Row& row : rows) {
    ATENA_RETURN_IF_ERROR(builder.AppendRow(row));
  }
  DatasetInfo info{
      .id = "cyber2",
      .title = "Cyber #2",
      .description = "Remote code execution attack",
      .domain = "cyber-security",
      .focal_attributes = {"source_ip", "destination_ip"},
  };
  return FinishDataset(std::move(info), &builder);
}

Result<Dataset> MakeCyber3(uint64_t seed, int scale_factor) {
  const int scale = std::max(1, scale_factor);
  Rng rng(seed * 0x100005 + 17);
  const std::string phish_host = "secure-bank1-login.xyz";
  const std::string lure_referrer = "mail.corp.local/inbox";

  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(745) * static_cast<size_t>(scale));

  // Normal browsing: 690·scale proxy events.
  const std::vector<std::string> hosts = {"bank1.com", "mail.corp.local",
                                          "news.site.com", "search.engine.com",
                                          "intranet.corp.local"};
  const std::vector<std::string> paths = {"/", "/inbox", "/article",
                                          "/login", "/search", "/dashboard"};
  for (int i = 0; i < 690 * scale; ++i) {
    double t = rng.NextDouble() * (28800.0 * scale);  // scale working days
    int client = static_cast<int>(rng.NextInt(50, 89));
    const std::string& host = hosts[rng.NextZipf(hosts.size(), 0.9)];
    const std::string& path = paths[rng.NextBounded(paths.size())];
    bool post = (path == "/login") && rng.NextBool(0.5);
    rows.push_back({Value(int64_t{0}), Value(t),
                    Value(Ip(192, 168, 3, client)), Value(host), Value(path),
                    Value(std::string(post ? "POST" : "GET")),
                    Value(std::string(rng.NextBool(0.3) ? "search.engine.com"
                                                        : "direct")),
                    Value(int64_t{200}), Value(rng.NextInt(500, 60000))});
  }
  // The phish: 55·scale events. Six victims arrive from the webmail lure,
  // load the fake page, and five of them POST credentials.
  const int phish_total = 55 * scale;
  const std::vector<int> victims = {52, 57, 61, 70, 77, 83};
  int emitted = 0;
  for (size_t v = 0; v < victims.size() && emitted < phish_total; ++v) {
    double t0 = 9000.0 + static_cast<double>(v) * 1200.0;
    // Landing page + assets.
    for (int a = 0; a < 7 && emitted < phish_total; ++a, ++emitted) {
      rows.push_back({Value(int64_t{0}), Value(t0 + a * 0.8),
                      Value(Ip(192, 168, 3, victims[v])), Value(phish_host),
                      Value(std::string(a == 0 ? "/login.php" : "/assets/bank1.css")),
                      Value(std::string("GET")), Value(lure_referrer),
                      Value(int64_t{200}), Value(rng.NextInt(2000, 30000))});
    }
    // Credential POST for five of the six victims.
    if (v != 3 && emitted < phish_total) {
      rows.push_back({Value(int64_t{0}), Value(t0 + 45.0),
                      Value(Ip(192, 168, 3, victims[v])), Value(phish_host),
                      Value(std::string("/login.php")),
                      Value(std::string("POST")), Value(phish_host + "/login.php"),
                      Value(int64_t{302}), Value(rng.NextInt(300, 900))});
      ++emitted;
    }
  }
  // Top up to exactly 55·scale phishing events with repeated victim visits.
  while (emitted < phish_total) {
    double t = 16000.0 + emitted * 37.0;
    rows.push_back({Value(int64_t{0}), Value(t),
                    Value(Ip(192, 168, 3, victims[emitted % victims.size()])),
                    Value(phish_host), Value(std::string("/login.php")),
                    Value(std::string("GET")), Value(lure_referrer),
                    Value(int64_t{200}), Value(rng.NextInt(2000, 30000))});
    ++emitted;
  }

  FinalizeEventLog(&rows, 1);

  TableBuilder builder("cyber3");
  builder.AddColumn("event_id", DataType::kInt64);
  builder.AddColumn("timestamp", DataType::kFloat64);
  builder.AddColumn("source_ip", DataType::kString);
  builder.AddColumn("host", DataType::kString);
  builder.AddColumn("url_path", DataType::kString);
  builder.AddColumn("method", DataType::kString);
  builder.AddColumn("referrer", DataType::kString);
  builder.AddColumn("status", DataType::kInt64);
  builder.AddColumn("bytes", DataType::kInt64);
  for (const Row& row : rows) {
    ATENA_RETURN_IF_ERROR(builder.AppendRow(row));
  }
  DatasetInfo info{
      .id = "cyber3",
      .title = "Cyber #3",
      .description = "Web-based phishing attack",
      .domain = "cyber-security",
      .focal_attributes = {"source_ip", "host"},
  };
  return FinishDataset(std::move(info), &builder);
}

Result<Dataset> MakeCyber4(uint64_t seed, int scale_factor) {
  const int scale = std::max(1, scale_factor);
  Rng rng(seed * 0x100007 + 19);
  const std::string attacker = Ip(172, 16, 0, 99);
  const std::string victim = Ip(192, 168, 10, 5);
  const std::vector<int> open_ports = {22, 80, 443, 445};

  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(13625) * static_cast<size_t>(scale));

  auto is_open = [&open_ports](int port) {
    return std::find(open_ports.begin(), open_ports.end(), port) !=
           open_ports.end();
  };

  // The scan: 2·scale SYN passes over ports 1..1024, RST replies from the
  // 1020 closed ports per pass, SYN-ACK from the 4 open ports.
  for (int pass = 0; pass < 2 * scale; ++pass) {
    for (int port = 1; port <= 1024; ++port) {
      double t = 500.0 + pass * 40.0 + port * 0.03;
      rows.push_back({Value(int64_t{0}), Value(t), Value(attacker),
                      Value(victim), Value(std::string("TCP")),
                      Value(rng.NextInt(40000, 60000)),
                      Value(static_cast<int64_t>(port)),
                      Value(std::string("SYN")), Value(int64_t{60})});
      double tr = t + 0.001;
      rows.push_back({Value(int64_t{0}), Value(tr), Value(victim),
                      Value(attacker), Value(std::string("TCP")),
                      Value(static_cast<int64_t>(port)),
                      Value(rng.NextInt(40000, 60000)),
                      Value(std::string(is_open(port) ? "SYN, ACK" : "RST, ACK")),
                      Value(int64_t{60})});
    }
  }
  // 4096·scale scan rows so far; 9529·scale background rows round out
  // 13625·scale.
  const std::vector<std::string> flags = {"ACK", "PSH, ACK", "SYN", "SYN, ACK",
                                          "FIN, ACK"};
  const std::vector<double> flag_weights = {0.45, 0.3, 0.08, 0.08, 0.09};
  const std::vector<int> service_ports = {80, 443, 53, 25, 8080};
  for (int i = 0; i < 9529 * scale; ++i) {
    double t = rng.NextDouble() * (1200.0 * scale);
    int a = static_cast<int>(rng.NextInt(20, 99));
    bool udp = rng.NextBool(0.12);
    int service = service_ports[rng.NextZipf(service_ports.size(), 1.0)];
    std::string flag = udp ? "" : flags[rng.SampleDiscrete(flag_weights)];
    rows.push_back(
        {Value(int64_t{0}), Value(t), Value(Ip(192, 168, 10, a)),
         Value(Ip(10, 1, 1, static_cast<int>(rng.NextInt(1, 20)))),
         Value(std::string(udp ? "UDP" : "TCP")),
         Value(rng.NextInt(40000, 60000)), Value(static_cast<int64_t>(service)),
         Value(std::move(flag)), Value(rng.NextInt(60, 1514))});
  }

  FinalizeEventLog(&rows, 1);

  TableBuilder builder("cyber4");
  builder.AddColumn("packet_id", DataType::kInt64);
  builder.AddColumn("timestamp", DataType::kFloat64);
  builder.AddColumn("source_ip", DataType::kString);
  builder.AddColumn("destination_ip", DataType::kString);
  builder.AddColumn("protocol", DataType::kString);
  builder.AddColumn("source_port", DataType::kInt64);
  builder.AddColumn("destination_port", DataType::kInt64);
  builder.AddColumn("tcp_flags", DataType::kString);
  builder.AddColumn("length", DataType::kInt64);
  for (const Row& row : rows) {
    ATENA_RETURN_IF_ERROR(builder.AppendRow(row));
  }
  DatasetInfo info{
      .id = "cyber4",
      .title = "Cyber #4",
      .description = "TCP port scan",
      .domain = "cyber-security",
      .focal_attributes = {"source_ip", "destination_ip"},
  };
  return FinishDataset(std::move(info), &builder);
}

}  // namespace atena
