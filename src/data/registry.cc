#include "data/registry.h"

#include "data/cyber.h"
#include "data/flights.h"

namespace atena {

std::vector<std::string> ExperimentalDatasetIds() {
  return {"cyber1", "cyber2", "cyber3", "cyber4",
          "flights1", "flights2", "flights3", "flights4"};
}

Result<Dataset> MakeDataset(const std::string& id) {
  if (id == "cyber1") return MakeCyber1();
  if (id == "cyber2") return MakeCyber2();
  if (id == "cyber3") return MakeCyber3();
  if (id == "cyber4") return MakeCyber4();
  if (id == "flights1") return MakeFlights1();
  if (id == "flights2") return MakeFlights2();
  if (id == "flights3") return MakeFlights3();
  if (id == "flights4") return MakeFlights4();
  return Status::NotFound("unknown dataset id '" + id + "'");
}

Result<std::vector<Dataset>> MakeAllDatasets() {
  std::vector<Dataset> out;
  for (const auto& id : ExperimentalDatasetIds()) {
    ATENA_ASSIGN_OR_RETURN(Dataset d, MakeDataset(id));
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace atena
