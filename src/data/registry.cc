#include "data/registry.h"

#include "data/cyber.h"
#include "data/flights.h"

namespace atena {

std::vector<std::string> ExperimentalDatasetIds() {
  return {"cyber1", "cyber2", "cyber3", "cyber4",
          "flights1", "flights2", "flights3", "flights4"};
}

Result<Dataset> MakeDataset(const std::string& id, int scale_factor) {
  if (id == "cyber1") return MakeCyber1(1, scale_factor);
  if (id == "cyber2") return MakeCyber2(2, scale_factor);
  if (id == "cyber3") return MakeCyber3(3, scale_factor);
  if (id == "cyber4") return MakeCyber4(4, scale_factor);
  if (id == "flights1") return MakeFlights1(101, scale_factor);
  if (id == "flights2") return MakeFlights2(102, scale_factor);
  if (id == "flights3") return MakeFlights3(103, scale_factor);
  if (id == "flights4") return MakeFlights4(104, scale_factor);
  return Status::NotFound("unknown dataset id '" + id + "'");
}

Result<std::vector<Dataset>> MakeAllDatasets(int scale_factor) {
  std::vector<Dataset> out;
  for (const auto& id : ExperimentalDatasetIds()) {
    ATENA_ASSIGN_OR_RETURN(Dataset d, MakeDataset(id, scale_factor));
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace atena
