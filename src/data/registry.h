#ifndef ATENA_DATA_REGISTRY_H_
#define ATENA_DATA_REGISTRY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace atena {

/// Ids of the 8 experimental datasets in Table 1 order:
/// cyber1..cyber4, flights1..flights4.
std::vector<std::string> ExperimentalDatasetIds();

/// Generates the dataset with the given id (see ExperimentalDatasetIds).
/// Generation is deterministic: the same (id, scale_factor) always yields
/// the same table. `scale_factor` multiplies every dataset's row count
/// (see data/cyber.h and data/flights.h); 1 reproduces the legacy tables.
Result<Dataset> MakeDataset(const std::string& id, int scale_factor = 1);

/// Generates all 8 experimental datasets in Table 1 order.
Result<std::vector<Dataset>> MakeAllDatasets(int scale_factor = 1);

}  // namespace atena

#endif  // ATENA_DATA_REGISTRY_H_
