#ifndef ATENA_DATA_REGISTRY_H_
#define ATENA_DATA_REGISTRY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace atena {

/// Ids of the 8 experimental datasets in Table 1 order:
/// cyber1..cyber4, flights1..flights4.
std::vector<std::string> ExperimentalDatasetIds();

/// Generates the dataset with the given id (see ExperimentalDatasetIds).
/// Generation is deterministic: the same id always yields the same table.
Result<Dataset> MakeDataset(const std::string& id);

/// Generates all 8 experimental datasets in Table 1 order.
Result<std::vector<Dataset>> MakeAllDatasets();

}  // namespace atena

#endif  // ATENA_DATA_REGISTRY_H_
