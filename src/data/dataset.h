#ifndef ATENA_DATA_DATASET_H_
#define ATENA_DATA_DATASET_H_

#include <string>
#include <vector>

#include "dataframe/table.h"

namespace atena {

/// Metadata for one experimental dataset (paper Table 1).
struct DatasetInfo {
  std::string id;           // machine id, e.g. "cyber1"
  std::string title;        // paper name, e.g. "Cyber #1"
  std::string description;  // e.g. "ICMP scan on IP range"
  std::string domain;       // "cyber-security" or "flight-delays"
  /// Focal attributes used for the coherency reward (paper §6.1):
  /// source_ip/destination_ip for cyber, departure/arrival delay for flights.
  std::vector<std::string> focal_attributes;
};

/// A generated dataset: metadata plus the materialized table.
struct Dataset {
  DatasetInfo info;
  TablePtr table;
};

}  // namespace atena

#endif  // ATENA_DATA_DATASET_H_
