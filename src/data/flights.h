#ifndef ATENA_DATA_FLIGHTS_H_
#define ATENA_DATA_FLIGHTS_H_

#include "common/status.h"
#include "data/dataset.h"

namespace atena {

/// Synthetic equivalents of the paper's flight-delays datasets, derived in
/// the paper from the Kaggle 2015 Flight Delays database [32]. The shared
/// delay model plants the phenomena the paper's narrative uses: delays are
/// longest in June (Example 1.1), LAX and ATL suffer extra June delays,
/// Thursdays are the worst weekday (Figure 1), budget carriers (NK, B6) run
/// later than legacy ones, and night departures are slightly earlier than
/// daytime. Row counts match Table 1; generation is deterministic in
/// (seed, scale_factor).
///
/// `scale_factor` multiplies the target row count (the delay model is
/// per-row, so a scaled table is just scale× more draws from the same
/// population). A factor of 1 reproduces the legacy table bit-for-bit;
/// 100–1000 reach the million-row sizes the dataframe kernels target.

/// Flights #1 — 5661·scale rows: American Airlines flights on Sundays.
Result<Dataset> MakeFlights1(uint64_t seed = 101, int scale_factor = 1);

/// Flights #2 — 8172·scale rows: flights departing from BOS.
Result<Dataset> MakeFlights2(uint64_t seed = 102, int scale_factor = 1);

/// Flights #3 — 1082·scale rows: flights from SFO to LAX.
Result<Dataset> MakeFlights3(uint64_t seed = 103, int scale_factor = 1);

/// Flights #4 — 2175·scale rows: short, night-time flights.
Result<Dataset> MakeFlights4(uint64_t seed = 104, int scale_factor = 1);

}  // namespace atena

#endif  // ATENA_DATA_FLIGHTS_H_
