#ifndef ATENA_NOTEBOOK_RENDER_H_
#define ATENA_NOTEBOOK_RENDER_H_

#include <string>

#include "common/status.h"
#include "eda/session.h"

namespace atena {

struct RenderOptions {
  /// Rows of each result display shown per notebook cell.
  int max_rows = 8;
  /// Include the per-operation reward in the cell header (debug aid).
  bool include_rewards = false;
};

/// Plain-text rendering: one cell per operation with its verbal description
/// and a preview of the result display (paper Figure 1, textual form).
Result<std::string> RenderText(const EdaNotebook& notebook,
                               const RenderOptions& options = {});

/// GitHub-flavored Markdown rendering with result tables.
Result<std::string> RenderMarkdown(const EdaNotebook& notebook,
                                   const RenderOptions& options = {});

/// Self-contained HTML page: cells plus the exploration-tree side panel.
Result<std::string> RenderHtml(const EdaNotebook& notebook,
                               const RenderOptions& options = {});

/// The dynamic tree-like illustration of the operations (Figure 1's right
/// panel) in ASCII: FILTER/GROUP descend, BACK climbs back up.
std::string RenderTree(const EdaNotebook& notebook);

}  // namespace atena

#endif  // ATENA_NOTEBOOK_RENDER_H_
