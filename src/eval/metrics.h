#ifndef ATENA_EVAL_METRICS_H_
#define ATENA_EVAL_METRICS_H_

#include <vector>

#include "eval/view_signature.h"

namespace atena {

/// The A-EDA metric suite (paper §6.3) comparing a generated notebook to a
/// set of gold-standard notebooks over the same dataset.
struct AedaScores {
  double precision = 0.0;
  double t_bleu_1 = 0.0;
  double t_bleu_2 = 0.0;
  double t_bleu_3 = 0.0;
  double eda_sim = 0.0;
};

/// Precision: the notebook as a *set* of distinct views; a view is a hit if
/// it occurs in any gold notebook (paper: hits / #views).
double ViewPrecision(const std::vector<ViewSignature>& candidate,
                     const std::vector<std::vector<ViewSignature>>& gold);

/// T-BLEU-n: BLEU [33] over view-signature tokens — clipped n-gram
/// precision against the gold set, geometric mean of orders 1..n, brevity
/// penalty against the closest gold length.
double TBleu(const std::vector<ViewSignature>& candidate,
             const std::vector<std::vector<ViewSignature>>& gold, int max_n);

/// EDA-Sim [29]: order-aware similarity with fine-grained per-view partial
/// credit. Computed as the best global alignment (Needleman-Wunsch with
/// zero gap penalty) of the two view sequences under ViewSimilarity,
/// normalized by the longer sequence; the final score takes the max over
/// the gold notebooks.
double EdaSim(const std::vector<ViewSignature>& candidate,
              const std::vector<ViewSignature>& reference);

/// Pruning accounting of one MaxEdaSim call (tests/bench).
struct EdaSimPruningStats {
  int references_total = 0;
  /// References whose full alignment DP actually ran.
  int references_evaluated = 0;
  /// References skipped because their upper bound could not beat the
  /// running best — the result is identical with or without them.
  int references_pruned = 0;
};

/// Max over the gold notebooks — identical to looping EdaSim over all of
/// them, but sub-linear in practice: view signatures are interned so
/// pairwise ViewSimilarity values are computed once across all
/// references, each reference gets a cheap alignment upper bound
/// (Σ_i max_j sim(c_i, r_j) / max(n, m) — every candidate view aligns to
/// at most one reference view, so this dominates the DP's matched sum),
/// and references are evaluated best-bound-first, pruning any whose bound
/// cannot exceed the best alignment found so far. Pruned references
/// cannot change the max, so the returned score is identical to the
/// unpruned loop (test-enforced in tests/eval_test.cc).
double MaxEdaSim(const std::vector<ViewSignature>& candidate,
                 const std::vector<std::vector<ViewSignature>>& gold);
double MaxEdaSim(const std::vector<ViewSignature>& candidate,
                 const std::vector<std::vector<ViewSignature>>& gold,
                 EdaSimPruningStats* stats);

/// All five metrics at once.
AedaScores ComputeAedaScores(
    const std::vector<ViewSignature>& candidate,
    const std::vector<std::vector<ViewSignature>>& gold);

}  // namespace atena

#endif  // ATENA_EVAL_METRICS_H_
