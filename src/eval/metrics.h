#ifndef ATENA_EVAL_METRICS_H_
#define ATENA_EVAL_METRICS_H_

#include <vector>

#include "eval/view_signature.h"

namespace atena {

/// The A-EDA metric suite (paper §6.3) comparing a generated notebook to a
/// set of gold-standard notebooks over the same dataset.
struct AedaScores {
  double precision = 0.0;
  double t_bleu_1 = 0.0;
  double t_bleu_2 = 0.0;
  double t_bleu_3 = 0.0;
  double eda_sim = 0.0;
};

/// Precision: the notebook as a *set* of distinct views; a view is a hit if
/// it occurs in any gold notebook (paper: hits / #views).
double ViewPrecision(const std::vector<ViewSignature>& candidate,
                     const std::vector<std::vector<ViewSignature>>& gold);

/// T-BLEU-n: BLEU [33] over view-signature tokens — clipped n-gram
/// precision against the gold set, geometric mean of orders 1..n, brevity
/// penalty against the closest gold length.
double TBleu(const std::vector<ViewSignature>& candidate,
             const std::vector<std::vector<ViewSignature>>& gold, int max_n);

/// EDA-Sim [29]: order-aware similarity with fine-grained per-view partial
/// credit. Computed as the best global alignment (Needleman-Wunsch with
/// zero gap penalty) of the two view sequences under ViewSimilarity,
/// normalized by the longer sequence; the final score takes the max over
/// the gold notebooks.
double EdaSim(const std::vector<ViewSignature>& candidate,
              const std::vector<ViewSignature>& reference);
double MaxEdaSim(const std::vector<ViewSignature>& candidate,
                 const std::vector<std::vector<ViewSignature>>& gold);

/// All five metrics at once.
AedaScores ComputeAedaScores(
    const std::vector<ViewSignature>& candidate,
    const std::vector<std::vector<ViewSignature>>& gold);

}  // namespace atena

#endif  // ATENA_EVAL_METRICS_H_
