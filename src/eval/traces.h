#ifndef ATENA_EVAL_TRACES_H_
#define ATENA_EVAL_TRACES_H_

#include <vector>

#include "data/dataset.h"
#include "eda/session.h"

namespace atena {

/// Options of the simulated-analyst model (DESIGN.md substitution #5).
struct TraceOptions {
  int num_traces = 3;
  uint64_t seed = 77;
  /// Probability of following the current gold script at each step (the
  /// analyst knows roughly where the interesting material is)...
  double follow_gold_prob = 0.45;
  /// ...probability of an exploratory detour (a random enumerated
  /// operation)...
  double explore_prob = 0.35;
  /// ...and the remainder are dead-end moves (BACK / random action), which
  /// is what makes traces harder to read than curated gold notebooks.
};

/// Generates EDA-trace notebooks: goal-directed but uncurated sessions, the
/// analog of the REACT trace corpus [42] the paper replays. Each trace
/// interleaves steps from a randomly chosen gold script with exploratory
/// detours and backtracking, so traces cover much of the gold content but
/// in a noisier order (generator = "EDA-Traces").
Result<std::vector<EdaNotebook>> SimulatedTraceNotebooks(
    const Dataset& dataset, const EnvConfig& env_config,
    const TraceOptions& options);
Result<std::vector<EdaNotebook>> SimulatedTraceNotebooks(
    const Dataset& dataset, const EnvConfig& env_config);

}  // namespace atena

#endif  // ATENA_EVAL_TRACES_H_
