#ifndef ATENA_EVAL_SCRIPT_PARSER_H_
#define ATENA_EVAL_SCRIPT_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "eda/operation.h"

namespace atena {

/// Parses a textual EDA-operation script into operations — the exchange
/// format of the A-EDA benchmark CLI, so notebooks produced by *other*
/// systems can be scored against this repository's gold standard (the
/// paper released its benchmark for exactly this purpose [5]).
///
/// Grammar (one operation per line; '#' starts a comment; blank lines are
/// ignored; column names and string terms may be double-quoted):
///
///   FILTER <column> <op> <term>     op ∈ ==, !=, >, >=, <, <=,
///                                        contains, startswith, endswith
///   GROUP <column> <AGG> [<column>] AGG ∈ COUNT, SUM, MIN, MAX, AVG
///                                        (COUNT takes no target column)
///   BACK
///
/// Terms parse as int64 when possible, then float64, else string (numeric
/// terms may be quoted to force string interpretation). Example:
///
///   GROUP month AVG departure_delay
///   FILTER month == June
///   GROUP origin_airport AVG departure_delay
///   BACK
///   FILTER "departure_delay" > 45.5
Result<std::vector<EdaOperation>> ParseOperationScript(
    const std::string& text, const Table& table);

/// Serializes operations back into the script format (round-trips through
/// ParseOperationScript).
std::string FormatOperationScript(const std::vector<EdaOperation>& ops,
                                  const Table& table);

}  // namespace atena

#endif  // ATENA_EVAL_SCRIPT_PARSER_H_
