#ifndef ATENA_EVAL_GOLD_H_
#define ATENA_EVAL_GOLD_H_

#include <vector>

#include "data/dataset.h"
#include "eda/session.h"

namespace atena {

/// Gold-standard notebooks (paper §6.1): scripted expert sessions that
/// walk a reader through each dataset's planted phenomena, standing in for
/// the cyber challenges' walk-through tutorials and the Kaggle notebooks
/// (DESIGN.md substitution #5). Five scripts per dataset, each taking a
/// slightly different path through the same insights — like the paper's
/// 5–7 gold notebooks per dataset.
Result<std::vector<std::vector<EdaOperation>>> GoldOperationScripts(
    const Dataset& dataset);

/// Replays every gold script on a fresh environment and returns the
/// notebooks (generator = "Gold").
Result<std::vector<EdaNotebook>> GoldNotebooks(const Dataset& dataset,
                                               const EnvConfig& env_config);

}  // namespace atena

#endif  // ATENA_EVAL_GOLD_H_
