#include "eval/view_signature.h"

#include <algorithm>
#include <unordered_set>

namespace atena {

namespace {

double JaccardOverlap(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::unordered_set<std::string> sa(a.begin(), a.end());
  size_t intersection = 0;
  for (const auto& x : b) {
    if (sa.count(x)) ++intersection;
  }
  const size_t unions = sa.size() + b.size() - intersection;
  return unions == 0 ? 1.0
                     : static_cast<double>(intersection) /
                           static_cast<double>(unions);
}

/// Splits a canonical filter string "column op term..." into its parts
/// (column names never contain spaces; the term may).
struct FilterParts {
  std::string column;
  std::string op;
  std::string term;
};

FilterParts SplitFilter(const std::string& filter) {
  FilterParts parts;
  size_t first = filter.find(' ');
  if (first == std::string::npos) {
    parts.column = filter;
    return parts;
  }
  parts.column = filter.substr(0, first);
  size_t second = filter.find(' ', first + 1);
  if (second == std::string::npos) {
    parts.op = filter.substr(first + 1);
    return parts;
  }
  parts.op = filter.substr(first + 1, second - first - 1);
  parts.term = filter.substr(second + 1);
  return parts;
}

/// Partial-credit similarity of two predicates: same column is most of the
/// match, then the operator, then the exact term (EDA-Sim's fine-grained
/// view comparison [29]: "almost identical views ... evaluated as highly
/// similar").
double FilterPredicateSimilarity(const std::string& a, const std::string& b) {
  if (a == b) return 1.0;
  FilterParts pa = SplitFilter(a);
  FilterParts pb = SplitFilter(b);
  double score = 0.0;
  if (pa.column == pb.column) score += 0.5;
  if (pa.op == pb.op) score += 0.2;
  if (pa.term == pb.term && !pa.term.empty()) score += 0.3;
  return score;
}

/// Symmetric soft set overlap of two predicate sets: every predicate
/// contributes its best counterpart's similarity, normalized over both
/// directions. Exactly equal sets score 1, column-disjoint sets 0.
double SoftFilterOverlap(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  auto one_way = [](const std::vector<std::string>& from,
                    const std::vector<std::string>& to) {
    double total = 0.0;
    for (const auto& x : from) {
      double best = 0.0;
      for (const auto& y : to) {
        best = std::max(best, FilterPredicateSimilarity(x, y));
      }
      total += best;
    }
    return total;
  };
  return (one_way(a, b) + one_way(b, a)) /
         static_cast<double>(a.size() + b.size());
}

}  // namespace

std::string ViewSignature::ToKey() const {
  std::string key = "F{";
  for (size_t i = 0; i < filters.size(); ++i) {
    if (i > 0) key += ";";
    key += filters[i];
  }
  key += "}|G{";
  for (size_t i = 0; i < groups.size(); ++i) {
    if (i > 0) key += ";";
    key += groups[i];
  }
  key += "}|A{" + aggregation + "}";
  return key;
}

ViewSignature MakeViewSignature(const Table& table, const Display& display) {
  ViewSignature sig;
  for (const auto& pred : display.filters) {
    std::string column = (pred.column >= 0 && pred.column < table.num_columns())
                             ? table.column_name(pred.column)
                             : "?";
    sig.filters.push_back(column + " " + CompareOpSymbol(pred.op) + " " +
                          pred.term.ToString());
  }
  std::sort(sig.filters.begin(), sig.filters.end());
  for (int c : display.group_columns) {
    sig.groups.push_back(
        (c >= 0 && c < table.num_columns()) ? table.column_name(c) : "?");
  }
  std::sort(sig.groups.begin(), sig.groups.end());
  if (display.is_grouped()) {
    if (display.agg == AggFunc::kCount || display.agg_column < 0) {
      sig.aggregation = "COUNT(*)";
    } else {
      sig.aggregation = std::string(AggFuncName(display.agg)) + "(" +
                        table.column_name(display.agg_column) + ")";
    }
  }
  return sig;
}

std::vector<ViewSignature> NotebookSignatures(const EdaNotebook& notebook) {
  std::vector<ViewSignature> out;
  out.reserve(notebook.entries.size());
  for (const auto& entry : notebook.entries) {
    out.push_back(MakeViewSignature(*notebook.table, entry.display));
  }
  return out;
}

double ViewSimilarity(const ViewSignature& a, const ViewSignature& b) {
  const double filter_sim = SoftFilterOverlap(a.filters, b.filters);
  const double group_sim = JaccardOverlap(a.groups, b.groups);
  const double agg_sim = (a.aggregation == b.aggregation) ? 1.0 : 0.0;
  return 0.4 * filter_sim + 0.4 * group_sim + 0.2 * agg_sim;
}

}  // namespace atena
