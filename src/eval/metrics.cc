#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace atena {

namespace {

std::vector<std::string> Keys(const std::vector<ViewSignature>& views) {
  std::vector<std::string> keys;
  keys.reserve(views.size());
  for (const auto& v : views) keys.push_back(v.ToKey());
  return keys;
}

/// Modified n-gram precision of `candidate` against the references, with
/// reference-clipped counts (standard BLEU ingredient).
double ClippedNgramPrecision(const std::vector<std::string>& candidate,
                             const std::vector<std::vector<std::string>>& refs,
                             size_t n) {
  if (candidate.size() < n) return 0.0;
  std::map<std::vector<std::string>, int> cand_counts;
  for (size_t i = 0; i + n <= candidate.size(); ++i) {
    std::vector<std::string> gram(candidate.begin() + static_cast<long>(i),
                                  candidate.begin() + static_cast<long>(i + n));
    ++cand_counts[gram];
  }
  std::map<std::vector<std::string>, int> max_ref_counts;
  for (const auto& ref : refs) {
    std::map<std::vector<std::string>, int> counts;
    for (size_t i = 0; i + n <= ref.size(); ++i) {
      std::vector<std::string> gram(ref.begin() + static_cast<long>(i),
                                    ref.begin() + static_cast<long>(i + n));
      ++counts[gram];
    }
    for (const auto& [gram, c] : counts) {
      auto it = max_ref_counts.find(gram);
      if (it == max_ref_counts.end()) {
        max_ref_counts[gram] = c;
      } else {
        it->second = std::max(it->second, c);
      }
    }
  }
  int matched = 0, total = 0;
  for (const auto& [gram, c] : cand_counts) {
    total += c;
    auto it = max_ref_counts.find(gram);
    if (it != max_ref_counts.end()) matched += std::min(c, it->second);
  }
  return total == 0 ? 0.0
                    : static_cast<double>(matched) /
                          static_cast<double>(total);
}

}  // namespace

double ViewPrecision(const std::vector<ViewSignature>& candidate,
                     const std::vector<std::vector<ViewSignature>>& gold) {
  if (candidate.empty()) return 0.0;
  std::unordered_set<std::string> gold_keys;
  for (const auto& notebook : gold) {
    for (const auto& view : notebook) gold_keys.insert(view.ToKey());
  }
  // Distinct candidate views (the measure treats notebooks as sets).
  std::unordered_set<std::string> seen;
  int hits = 0, total = 0;
  for (const auto& view : candidate) {
    const std::string key = view.ToKey();
    if (!seen.insert(key).second) continue;
    ++total;
    if (gold_keys.count(key)) ++hits;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

double TBleu(const std::vector<ViewSignature>& candidate,
             const std::vector<std::vector<ViewSignature>>& gold, int max_n) {
  if (candidate.empty() || gold.empty() || max_n <= 0) return 0.0;
  std::vector<std::string> cand = Keys(candidate);
  std::vector<std::vector<std::string>> refs;
  refs.reserve(gold.size());
  for (const auto& notebook : gold) refs.push_back(Keys(notebook));

  // Geometric mean of smoothed clipped precisions (add-epsilon smoothing so
  // a single missing order does not zero the whole score, as is standard
  // for sentence-level BLEU).
  double log_sum = 0.0;
  for (int n = 1; n <= max_n; ++n) {
    double p = ClippedNgramPrecision(cand, refs, static_cast<size_t>(n));
    log_sum += std::log(std::max(p, 1e-9));
  }
  const double geo = std::exp(log_sum / max_n);

  // Brevity penalty against the closest reference length.
  size_t closest = refs.front().size();
  for (const auto& ref : refs) {
    if (std::llabs(static_cast<long long>(ref.size()) -
                   static_cast<long long>(cand.size())) <
        std::llabs(static_cast<long long>(closest) -
                   static_cast<long long>(cand.size()))) {
      closest = ref.size();
    }
  }
  double bp = 1.0;
  if (cand.size() < closest) {
    bp = std::exp(1.0 - static_cast<double>(closest) /
                            static_cast<double>(cand.size()));
  }
  return bp * geo;
}

double EdaSim(const std::vector<ViewSignature>& candidate,
              const std::vector<ViewSignature>& reference) {
  const size_t n = candidate.size(), m = reference.size();
  if (n == 0 || m == 0) return (n == m) ? 1.0 : 0.0;
  // Needleman-Wunsch with zero gap penalty = heaviest monotone alignment.
  std::vector<std::vector<double>> dp(n + 1, std::vector<double>(m + 1, 0.0));
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      const double match =
          dp[i - 1][j - 1] + ViewSimilarity(candidate[i - 1], reference[j - 1]);
      dp[i][j] = std::max({match, dp[i - 1][j], dp[i][j - 1]});
    }
  }
  return dp[n][m] / static_cast<double>(std::max(n, m));
}

namespace {

/// Interning table over view signatures: each distinct ToKey gets one id,
/// and pairwise ViewSimilarity values are memoized per unordered id pair.
/// ViewSimilarity is a pure function, so a memoized value is bit-identical
/// to recomputing it — gold sets share most of their views across
/// notebooks, which is what makes the cache pay.
class ViewSimTable {
 public:
  std::vector<int> Intern(const std::vector<ViewSignature>& views) {
    std::vector<int> ids;
    ids.reserve(views.size());
    for (const auto& view : views) {
      const auto [it, inserted] =
          id_by_key_.emplace(view.ToKey(), static_cast<int>(views_.size()));
      if (inserted) views_.push_back(&view);
      ids.push_back(it->second);
    }
    return ids;
  }

  double Sim(int a, int b) {
    const uint64_t key = (static_cast<uint64_t>(std::min(a, b)) << 32) |
                         static_cast<uint64_t>(std::max(a, b));
    const auto it = sims_.find(key);
    if (it != sims_.end()) return it->second;
    const double sim = ViewSimilarity(*views_[static_cast<size_t>(a)],
                                      *views_[static_cast<size_t>(b)]);
    sims_.emplace(key, sim);
    return sim;
  }

 private:
  std::unordered_map<std::string, int> id_by_key_;
  std::vector<const ViewSignature*> views_;  // one representative per id
  std::unordered_map<uint64_t, double> sims_;
};

/// EdaSim's alignment DP over interned ids (same recurrence, memoized
/// similarities — bit-identical values in the same order).
double AlignedSim(const std::vector<int>& candidate,
                  const std::vector<int>& reference, ViewSimTable* sims) {
  const size_t n = candidate.size(), m = reference.size();
  if (n == 0 || m == 0) return (n == m) ? 1.0 : 0.0;
  std::vector<std::vector<double>> dp(n + 1, std::vector<double>(m + 1, 0.0));
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      const double match =
          dp[i - 1][j - 1] + sims->Sim(candidate[i - 1], reference[j - 1]);
      dp[i][j] = std::max({match, dp[i - 1][j], dp[i][j - 1]});
    }
  }
  return dp[n][m] / static_cast<double>(std::max(n, m));
}

/// Margin the upper-bound comparison concedes to floating point: the
/// bound's sum and the DP's matched sum accumulate in different orders,
/// so their rounding can differ by ~1e-13 at these magnitudes (scores
/// live in [0, 1]); 1e-9 dominates that comfortably while pruning
/// essentially everything a tight bound would.
constexpr double kEdaSimBoundSlack = 1e-9;

}  // namespace

double MaxEdaSim(const std::vector<ViewSignature>& candidate,
                 const std::vector<std::vector<ViewSignature>>& gold) {
  return MaxEdaSim(candidate, gold, nullptr);
}

double MaxEdaSim(const std::vector<ViewSignature>& candidate,
                 const std::vector<std::vector<ViewSignature>>& gold,
                 EdaSimPruningStats* stats) {
  if (stats != nullptr) *stats = EdaSimPruningStats();
  if (gold.empty()) return 0.0;
  if (stats != nullptr) stats->references_total = static_cast<int>(gold.size());

  ViewSimTable sims;
  const std::vector<int> cand = sims.Intern(candidate);
  std::vector<std::vector<int>> refs;
  refs.reserve(gold.size());
  for (const auto& reference : gold) refs.push_back(sims.Intern(reference));

  // Upper bound per reference: in any monotone alignment each candidate
  // view matches at most one reference view, so the matched-sim sum is at
  // most Σ_i max_j sim(c_i, r_j); divide by the same max(n, m) as the DP.
  // Empty sequences take EdaSim's exact special-case value as their bound.
  std::vector<double> bounds(refs.size(), 0.0);
  for (size_t r = 0; r < refs.size(); ++r) {
    const std::vector<int>& ref = refs[r];
    if (cand.empty() || ref.empty()) {
      bounds[r] = (cand.size() == ref.size()) ? 1.0 : 0.0;
      continue;
    }
    double sum = 0.0;
    for (const int c : cand) {
      double best_sim = 0.0;
      for (const int v : ref) best_sim = std::max(best_sim, sims.Sim(c, v));
      sum += best_sim;
    }
    bounds[r] = sum / static_cast<double>(std::max(cand.size(), ref.size()));
  }

  // Best-bound-first: the strongest candidate reference is aligned first,
  // so the running best rises fast and prunes the tail. Ties keep input
  // order — evaluation order never affects the returned max anyway.
  std::vector<size_t> order(refs.size());
  for (size_t r = 0; r < refs.size(); ++r) order[r] = r;
  std::stable_sort(order.begin(), order.end(), [&bounds](size_t a, size_t b) {
    return bounds[a] > bounds[b];
  });

  double best = 0.0;
  for (const size_t r : order) {
    // A reference whose bound (plus the FP slack) cannot beat the running
    // best cannot change the max: EdaSim(c, r) <= bound < best.
    if (bounds[r] + kEdaSimBoundSlack <= best) {
      if (stats != nullptr) ++stats->references_pruned;
      continue;
    }
    if (stats != nullptr) ++stats->references_evaluated;
    best = std::max(best, AlignedSim(cand, refs[r], &sims));
  }
  return best;
}

AedaScores ComputeAedaScores(
    const std::vector<ViewSignature>& candidate,
    const std::vector<std::vector<ViewSignature>>& gold) {
  AedaScores scores;
  scores.precision = ViewPrecision(candidate, gold);
  scores.t_bleu_1 = TBleu(candidate, gold, 1);
  scores.t_bleu_2 = TBleu(candidate, gold, 2);
  scores.t_bleu_3 = TBleu(candidate, gold, 3);
  scores.eda_sim = MaxEdaSim(candidate, gold);
  return scores;
}

}  // namespace atena
