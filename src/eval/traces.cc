#include "eval/traces.h"

#include "common/random.h"
#include "eval/gold.h"

namespace atena {

Result<std::vector<EdaNotebook>> SimulatedTraceNotebooks(
    const Dataset& dataset, const EnvConfig& env_config,
    const TraceOptions& options) {
  ATENA_ASSIGN_OR_RETURN(auto scripts, GoldOperationScripts(dataset));
  EdaEnvironment env(dataset, env_config);
  Rng rng(options.seed ^ 0xA7A7A7A7ULL);

  std::vector<EdaNotebook> notebooks;
  notebooks.reserve(static_cast<size_t>(options.num_traces));
  for (int trace = 0; trace < options.num_traces; ++trace) {
    env.Reset();
    const auto& script = scripts[rng.NextBounded(scripts.size())];
    size_t script_pos = 0;
    while (!env.done()) {
      const double roll = rng.NextDouble();
      if (roll < options.follow_gold_prob && script_pos < script.size()) {
        env.StepOperation(script[script_pos++]);
      } else if (roll < options.follow_gold_prob + options.explore_prob) {
        // An exploratory detour: a random concrete operation over the
        // current display's frequent tokens.
        auto candidates = env.EnumerateOperations(/*tokens_per_column=*/2);
        env.StepOperation(candidates[rng.NextBounded(candidates.size())]);
      } else if (rng.NextBool(0.6)) {
        env.StepOperation(EdaOperation::Back());
      } else {
        env.Step(SampleRandomAction(env.action_space(), &rng));
      }
    }
    notebooks.push_back(NotebookFromSession(env, "EDA-Traces"));
  }
  return notebooks;
}

Result<std::vector<EdaNotebook>> SimulatedTraceNotebooks(
    const Dataset& dataset, const EnvConfig& env_config) {
  return SimulatedTraceNotebooks(dataset, env_config, TraceOptions());
}

}  // namespace atena
