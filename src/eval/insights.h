#ifndef ATENA_EVAL_INSIGHTS_H_
#define ATENA_EVAL_INSIGHTS_H_

#include <string>
#include <vector>

#include "eval/view_signature.h"

namespace atena {

/// A view pattern: the structural ingredients a result display must show
/// for a reader to plausibly derive an insight from it. All listed filter
/// substrings must appear among the view's filter predicates, all listed
/// groups among its grouped attributes, and (when non-empty) the
/// aggregation substring inside its aggregation label.
struct ViewPattern {
  std::vector<std::string> filter_substrings;
  std::vector<std::string> required_groups;
  std::string agg_substring;

  bool Matches(const ViewSignature& view) const;
};

/// One ground-truth insight of a dataset's official solution (paper §6.1:
/// the cyber challenges ship 9–15 relevant insights each). The insight is
/// "gathered" from a notebook when any of its patterns matches any view.
struct Insight {
  std::string description;
  std::vector<ViewPattern> patterns;
};

/// The planted-insight catalog of a cyber dataset (empty for the flights
/// datasets — the paper measures insight gathering on the cyber collection
/// only, Figure 4b).
std::vector<Insight> InsightCatalog(const std::string& dataset_id);

/// Fraction of catalog insights gathered from the notebook, in [0,1].
double InsightCoverage(const EdaNotebook& notebook,
                       const std::vector<Insight>& catalog);

}  // namespace atena

#endif  // ATENA_EVAL_INSIGHTS_H_
