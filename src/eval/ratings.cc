#include "eval/ratings.h"

#include "coherency/classifier.h"
#include "coherency/rules.h"
#include "common/math_utils.h"
#include "eval/metrics.h"
#include "reward/diversity.h"
#include "reward/interestingness.h"

namespace atena {

Result<NotebookQuality> AssessNotebook(const Dataset& dataset,
                                       const EdaNotebook& notebook,
                                       const std::vector<EdaNotebook>& gold,
                                       const EnvConfig& env_config) {
  NotebookQuality quality;

  // Replay the notebook's operations and accumulate component scores.
  EdaEnvironment env(dataset, env_config);
  CoherencyClassifier coherency(StandardRuleSet(dataset));
  ATENA_RETURN_IF_ERROR(coherency.Train(&env));
  env.Reset();
  int steps = 0;
  for (const auto& entry : notebook.entries) {
    if (env.done()) break;
    StepOutcome outcome = env.StepOperation(entry.op);
    RewardContext context;
    context.env = &env;
    context.op = &env.steps().back().op;
    context.valid = outcome.valid;
    quality.mean_interestingness += OperationInterestingness(context);
    quality.mean_diversity += DiversityReward(context);
    quality.mean_coherency += coherency.Score(context);
    ++steps;
  }
  if (steps > 0) {
    quality.mean_interestingness /= steps;
    quality.mean_diversity /= steps;
    quality.mean_coherency /= steps;
  }

  // Distance to the gold set, excluding the notebook itself when it is one
  // of the references.
  const auto candidate = NotebookSignatures(notebook);
  auto same_views = [&candidate](const std::vector<ViewSignature>& other) {
    if (candidate.size() != other.size()) return false;
    for (size_t i = 0; i < candidate.size(); ++i) {
      if (!(candidate[i] == other[i])) return false;
    }
    return true;
  };
  std::vector<std::vector<ViewSignature>> references;
  for (const auto& g : gold) {
    auto views = NotebookSignatures(g);
    if (same_views(views)) continue;
    references.push_back(std::move(views));
  }
  if (!references.empty()) {
    quality.eda_sim_to_gold = MaxEdaSim(candidate, references);
    quality.precision_to_gold = ViewPrecision(candidate, references);
  }
  return quality;
}

UserRatings ProxyRatings(const NotebookQuality& q) {
  auto to_scale = [](double score) { return 1.0 + 6.0 * Clamp(score, 0.0, 1.0); };
  UserRatings ratings;
  ratings.informativity =
      to_scale(0.45 * q.eda_sim_to_gold + 0.25 * q.precision_to_gold +
               0.30 * q.mean_interestingness);
  ratings.comprehensibility =
      to_scale(0.70 * q.mean_coherency + 0.30 * q.eda_sim_to_gold);
  ratings.expertise =
      to_scale(0.40 * q.eda_sim_to_gold + 0.35 * q.mean_coherency +
               0.25 * q.mean_interestingness);
  ratings.human_equivalence =
      to_scale(0.60 * q.eda_sim_to_gold + 0.40 * q.mean_coherency);
  return ratings;
}

}  // namespace atena
