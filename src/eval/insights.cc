#include "eval/insights.h"

#include "common/string_utils.h"

namespace atena {

bool ViewPattern::Matches(const ViewSignature& view) const {
  for (const auto& needle : filter_substrings) {
    bool found = false;
    for (const auto& filter : view.filters) {
      if (Contains(filter, needle)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  for (const auto& group : required_groups) {
    bool found = false;
    for (const auto& g : view.groups) {
      if (g == group) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  if (!agg_substring.empty() && !Contains(view.aggregation, agg_substring)) {
    return false;
  }
  return true;
}

namespace {

ViewPattern P(std::vector<std::string> filters,
              std::vector<std::string> groups, std::string agg = "") {
  ViewPattern p;
  p.filter_substrings = std::move(filters);
  p.required_groups = std::move(groups);
  p.agg_substring = std::move(agg);
  return p;
}

Insight I(std::string description, std::vector<ViewPattern> patterns) {
  Insight insight;
  insight.description = std::move(description);
  insight.patterns = std::move(patterns);
  return insight;
}

std::vector<Insight> Cyber1Insights() {
  return {
      I("Traffic is dominated by ICMP packets",
        {P({}, {"protocol"})}),
      I("A single host, 10.0.66.66, issues most of the traffic",
        {P({}, {"source_ip"}), P({"protocol == ICMP"}, {"source_ip"})}),
      I("The attacker sweeps the whole 192.168.1.0/24 range",
        {P({"source_ip == 10.0.66.66"}, {"destination_ip"}),
         P({"protocol == ICMP"}, {"destination_ip"})}),
      I("The flood consists of echo (ping) requests",
        {P({}, {"info"}), P({"info == Echo (ping) request"}, {})}),
      I("Only three hosts answer the sweep (exposed addresses)",
        {P({"Echo (ping) reply"}, {"source_ip"})}),
      I("The scan is concentrated in a short time burst",
        {P({"protocol == ICMP"}, {}, "timestamp"),
         P({"source_ip == 10.0.66.66"}, {}, "timestamp")}),
      I("Scan packets have a uniform small length",
        {P({"protocol == ICMP"}, {"length"}), P({}, {"length"}),
         P({"source_ip == 10.0.66.66"}, {}, "length")}),
      I("Attacker and repliers differ in TTL (64 vs 128)",
        {P({}, {"ttl"}), P({"protocol == ICMP"}, {}, "ttl")}),
      I("Background traffic is ordinary TCP/DNS office chatter",
        {P({"protocol == TCP"}, {}), P({"protocol != ICMP"}, {}),
         P({"protocol == DNS"}, {})}),
  };
}

std::vector<Insight> Cyber2Insights() {
  return {
      I("The CGI endpoint /cgi-bin/status.cgi is being attacked",
        {P({}, {"uri"}), P({"uri == /cgi-bin/status.cgi"}, {})}),
      I("All malicious requests come from 203.0.113.99",
        {P({"uri == /cgi-bin/status.cgi"}, {"source_ip"}),
         P({"source_ip == 203.0.113.99"}, {})}),
      I("The user-agent carries a shellshock code-injection payload",
        {P({}, {"user_agent"}), P({"() { :; }"}, {})}),
      I("The attacker switches from GET probing to POST exfiltration",
        {P({"source_ip == 203.0.113.99"}, {"method"}),
         P({"method == POST"}, {"uri"})}),
      I("Exfiltration responses are orders of magnitude larger",
        {P({}, {}, "response_bytes"),
         P({"response_bytes >"}, {"source_ip"})}),
      I("The attack happens in one concentrated window",
        {P({"source_ip == 203.0.113.99"}, {}, "timestamp"),
         P({"uri == /cgi-bin/status.cgi"}, {}, "timestamp")}),
      I("The vulnerable server answers the payloads with status 200",
        {P({}, {"status"}), P({"status == 200"}, {})}),
      I("Normal browsing is GETs to the public pages",
        {P({"method == GET"}, {}), P({}, {"method"})}),
      I("A dozen internal clients form the legitimate population",
        {P({}, {"source_ip"})}),
  };
}

std::vector<Insight> Cyber3Insights() {
  return {
      I("A look-alike host secure-bank1-login.xyz appears in the proxy log",
        {P({}, {"host"})}),
      I("Victims reach the phishing page from the webmail inbox",
        {P({"referrer == mail.corp.local/inbox"}, {}),
         P({"host == secure-bank1-login.xyz"}, {"referrer"})}),
      I("Six internal clients visited the phishing host",
        {P({"host == secure-bank1-login.xyz"}, {"source_ip"})}),
      I("Credentials are submitted via POST /login.php",
        {P({"method == POST"}, {}), P({"url_path == /login.php"}, {"method"}),
         P({"host == secure-bank1-login.xyz"}, {"method"})}),
      I("The credential POSTs are answered with a 302 redirect",
        {P({"method == POST"}, {"status"}), P({"status == 302"}, {})}),
      I("The phishing page mimics the legitimate bank1.com",
        {P({"host == bank1.com"}, {}), P({}, {"host"}, "bytes")}),
      I("The lure wave spans the late-morning hours",
        {P({"host == secure-bank1-login.xyz"}, {}, "timestamp")}),
      I("Phishing fetches are small compared to normal pages",
        {P({"host == secure-bank1-login.xyz"}, {}, "bytes")}),
      I("One victim stopped short of submitting credentials",
        {P({"host == secure-bank1-login.xyz"}, {"source_ip", "method"}),
         P({"url_path == /login.php"}, {"source_ip"})}),
  };
}

std::vector<Insight> Cyber4Insights() {
  return {
      I("SYN packets dominate abnormally", {P({}, {"tcp_flags"})}),
      I("The SYNs originate from a single host 172.16.0.99",
        {P({"tcp_flags == SYN"}, {"source_ip"}),
         P({"source_ip == 172.16.0.99"}, {})}),
      I("The scan targets one victim, 192.168.10.5",
        {P({"source_ip == 172.16.0.99"}, {"destination_ip"}),
         P({"destination_ip == 192.168.10.5"}, {})}),
      I("Destination ports sweep the 1-1024 range",
        {P({"source_ip == 172.16.0.99"}, {}, "destination_port"),
         P({"source_ip == 172.16.0.99"}, {"destination_port"})}),
      I("Open ports (22/80/443/445) answer SYN-ACK",
        {P({"tcp_flags == SYN, ACK"}, {"source_port"}),
         P({"tcp_flags == SYN, ACK"}, {})}),
      I("Closed ports answer RST",
        {P({"RST"}, {}),
         P({"destination_ip == 192.168.10.5"}, {"tcp_flags"})}),
      I("The victim's replies mirror the attacker's probes",
        {P({"source_ip == 192.168.10.5"}, {"tcp_flags"})}),
      I("The scan runs in a tight time window",
        {P({"tcp_flags == SYN"}, {}, "timestamp"),
         P({"source_ip == 172.16.0.99"}, {}, "timestamp")}),
      I("The port range was swept twice",
        {P({"source_ip == 172.16.0.99"}, {"destination_port"}, "COUNT")}),
      I("Background traffic talks to the usual service ports",
        {P({}, {"destination_port"}), P({"protocol == UDP"}, {})}),
  };
}

}  // namespace

std::vector<Insight> InsightCatalog(const std::string& dataset_id) {
  if (dataset_id == "cyber1") return Cyber1Insights();
  if (dataset_id == "cyber2") return Cyber2Insights();
  if (dataset_id == "cyber3") return Cyber3Insights();
  if (dataset_id == "cyber4") return Cyber4Insights();
  return {};
}

double InsightCoverage(const EdaNotebook& notebook,
                       const std::vector<Insight>& catalog) {
  if (catalog.empty()) return 0.0;
  const auto views = NotebookSignatures(notebook);
  int gathered = 0;
  for (const auto& insight : catalog) {
    bool hit = false;
    for (const auto& pattern : insight.patterns) {
      for (const auto& view : views) {
        if (pattern.Matches(view)) {
          hit = true;
          break;
        }
      }
      if (hit) break;
    }
    if (hit) ++gathered;
  }
  return static_cast<double>(gathered) / static_cast<double>(catalog.size());
}

}  // namespace atena
