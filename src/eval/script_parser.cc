#include "eval/script_parser.h"

#include <cctype>
#include <optional>

#include "common/string_utils.h"

namespace atena {

namespace {

/// Splits one line into whitespace-separated fields honoring double quotes.
Result<std::vector<std::string>> Tokenize(std::string_view line, int lineno) {
  std::vector<std::string> tokens;
  std::string current;
  bool in_quotes = false;
  bool token_started = false;
  for (char c : line) {
    if (in_quotes) {
      if (c == '"') {
        in_quotes = false;
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
      token_started = true;
    } else if (c == '#') {
      break;  // trailing comment
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      if (token_started) {
        tokens.push_back(std::move(current));
        current.clear();
        token_started = false;
      }
    } else {
      current += c;
      token_started = true;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("line " + std::to_string(lineno) +
                                   ": unterminated quote");
  }
  if (token_started) tokens.push_back(std::move(current));
  return tokens;
}

std::optional<CompareOp> ParseCompareOp(const std::string& token) {
  if (token == "==") return CompareOp::kEq;
  if (token == "!=") return CompareOp::kNeq;
  if (token == ">") return CompareOp::kGt;
  if (token == ">=") return CompareOp::kGe;
  if (token == "<") return CompareOp::kLt;
  if (token == "<=") return CompareOp::kLe;
  if (ToLower(token) == "contains") return CompareOp::kContains;
  if (ToLower(token) == "startswith") return CompareOp::kStartsWith;
  if (ToLower(token) == "endswith") return CompareOp::kEndsWith;
  return std::nullopt;
}

std::optional<AggFunc> ParseAggFunc(const std::string& token) {
  std::string upper;
  for (char c : token) {
    upper += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  if (upper == "COUNT") return AggFunc::kCount;
  if (upper == "SUM") return AggFunc::kSum;
  if (upper == "MIN") return AggFunc::kMin;
  if (upper == "MAX") return AggFunc::kMax;
  if (upper == "AVG") return AggFunc::kAvg;
  return std::nullopt;
}

/// Terms: int64 when possible, then double, else string. A quoted token is
/// always a string (quoting is detected by the caller passing raw+quoted).
Value ParseTerm(const std::string& token, bool quoted) {
  if (!quoted) {
    int64_t i = 0;
    if (ParseInt64(token, &i)) return Value(i);
    double d = 0.0;
    if (ParseDouble(token, &d)) return Value(d);
  }
  return Value(token);
}

}  // namespace

Result<std::vector<EdaOperation>> ParseOperationScript(const std::string& text,
                                                       const Table& table) {
  std::vector<EdaOperation> ops;
  int lineno = 0;
  for (const std::string& raw_line : SplitString(text, '\n')) {
    ++lineno;
    // Track whether the term token was quoted (to force string terms).
    const bool term_quoted = raw_line.find('"') != std::string::npos;
    ATENA_ASSIGN_OR_RETURN(auto tokens, Tokenize(raw_line, lineno));
    if (tokens.empty()) continue;
    const std::string verb = ToLower(tokens[0]);
    auto err = [lineno](const std::string& message) {
      return Status::InvalidArgument("line " + std::to_string(lineno) + ": " +
                                     message);
    };

    if (verb == "back") {
      if (tokens.size() != 1) return err("BACK takes no arguments");
      ops.push_back(EdaOperation::Back());
      continue;
    }
    if (verb == "filter") {
      if (tokens.size() != 4) {
        return err("expected FILTER <column> <op> <term>");
      }
      int column = table.FindColumn(tokens[1]);
      if (column < 0) return err("unknown column '" + tokens[1] + "'");
      auto op = ParseCompareOp(tokens[2]);
      if (!op) return err("unknown operator '" + tokens[2] + "'");
      // Only the term can be quoted meaningfully; approximate by checking
      // whether the raw line's last field was quoted.
      bool quoted = term_quoted &&
                    raw_line.rfind('"') > raw_line.find(tokens[2]);
      ops.push_back(EdaOperation::Filter(column, *op,
                                         ParseTerm(tokens[3], quoted)));
      continue;
    }
    if (verb == "group") {
      if (tokens.size() != 3 && tokens.size() != 4) {
        return err("expected GROUP <column> <AGG> [<column>]");
      }
      int group_column = table.FindColumn(tokens[1]);
      if (group_column < 0) return err("unknown column '" + tokens[1] + "'");
      auto agg = ParseAggFunc(tokens[2]);
      if (!agg) return err("unknown aggregation '" + tokens[2] + "'");
      int agg_column = -1;
      if (*agg == AggFunc::kCount) {
        if (tokens.size() == 4) return err("COUNT takes no target column");
      } else {
        if (tokens.size() != 4) {
          return err(tokens[2] + " needs a target column");
        }
        agg_column = table.FindColumn(tokens[3]);
        if (agg_column < 0) return err("unknown column '" + tokens[3] + "'");
      }
      ops.push_back(EdaOperation::Group(group_column, *agg, agg_column));
      continue;
    }
    return err("unknown operation '" + tokens[0] + "'");
  }
  return ops;
}

std::string FormatOperationScript(const std::vector<EdaOperation>& ops,
                                  const Table& table) {
  std::string out;
  auto quote_if_needed = [](const std::string& token) {
    for (char c : token) {
      if (std::isspace(static_cast<unsigned char>(c)) || c == '"' ||
          c == '#') {
        return "\"" + token + "\"";
      }
    }
    return token;
  };
  for (const auto& op : ops) {
    switch (op.type) {
      case OpType::kBack:
        out += "BACK\n";
        break;
      case OpType::kFilter: {
        std::string term = op.filter.term.ToString();
        if (op.filter.term.is_string()) {
          // Force-quote string terms that would re-parse as numbers.
          int64_t i;
          double f;
          if (ParseInt64(term, &i) || ParseDouble(term, &f)) {
            term = "\"" + term + "\"";
          } else {
            term = quote_if_needed(term);
          }
        }
        out += "FILTER " + quote_if_needed(table.column_name(op.filter.column)) +
               " " + CompareOpSymbol(op.filter.op) + " " + term + "\n";
        break;
      }
      case OpType::kGroup: {
        out += "GROUP " +
               quote_if_needed(table.column_name(op.group.group_column)) +
               " " + AggFuncName(op.group.agg);
        if (op.group.agg != AggFunc::kCount && op.group.agg_column >= 0) {
          out += " " + quote_if_needed(table.column_name(op.group.agg_column));
        }
        out += "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace atena
