#include "eval/gold.h"

#include <string>

namespace atena {

namespace {

/// Tiny fluent builder for scripted operation sequences over a table.
/// Column names are resolved eagerly; a bad name poisons the script and is
/// reported when the scripts are returned.
class Script {
 public:
  explicit Script(const Table& table) : table_(table) {}

  Script& F(const std::string& column, CompareOp op, Value term) {
    int c = table_.FindColumn(column);
    if (c < 0) {
      error_ = Status::NotFound("gold script: no column '" + column + "'");
      return *this;
    }
    ops_.push_back(EdaOperation::Filter(c, op, std::move(term)));
    return *this;
  }
  Script& Fs(const std::string& column, const std::string& term) {
    return F(column, CompareOp::kEq, Value(term));
  }
  Script& G(const std::string& group_column, AggFunc agg = AggFunc::kCount,
            const std::string& agg_column = "") {
    int g = table_.FindColumn(group_column);
    int a = agg_column.empty() ? -1 : table_.FindColumn(agg_column);
    if (g < 0 || (!agg_column.empty() && a < 0)) {
      error_ = Status::NotFound("gold script: bad group columns '" +
                                group_column + "'/'" + agg_column + "'");
      return *this;
    }
    ops_.push_back(EdaOperation::Group(g, agg, a));
    return *this;
  }
  Script& B() {
    ops_.push_back(EdaOperation::Back());
    return *this;
  }

  Result<std::vector<EdaOperation>> Build() const {
    if (!error_.ok()) return error_;
    return ops_;
  }

 private:
  const Table& table_;
  std::vector<EdaOperation> ops_;
  Status error_;
};

using Scripts = std::vector<std::vector<EdaOperation>>;

Result<Scripts> Cyber1Scripts(const Table& t) {
  Scripts out;
  // 1. The canonical walk-through: protocol mix → ICMP → who scans → whom,
  // then climb back above the attacker filter to inspect the repliers.
  ATENA_ASSIGN_OR_RETURN(
      auto s1, Script(t)
                   .G("protocol")
                   .Fs("protocol", "ICMP")
                   .G("source_ip")
                   .Fs("source_ip", "10.0.66.66")
                   .G("destination_ip")
                   .B()
                   .B()
                   .Fs("info", "Echo (ping) reply")
                   .G("ttl", AggFunc::kCount)
                   .Build());
  out.push_back(std::move(s1));
  // 2. Start from the info strings: replies first, then the request flood.
  ATENA_ASSIGN_OR_RETURN(auto s2, Script(t)
                                      .G("info")
                                      .Fs("info", "Echo (ping) reply")
                                      .G("source_ip")
                                      .B()
                                      .B()
                                      .Fs("info", "Echo (ping) request")
                                      .G("destination_ip")
                                      .Build());
  out.push_back(std::move(s2));
  // 3. Start from the talkative host, check timing and TTL.
  ATENA_ASSIGN_OR_RETURN(auto s3,
                         Script(t)
                             .G("source_ip")
                             .Fs("source_ip", "10.0.66.66")
                             .G("protocol")
                             .G("ttl", AggFunc::kAvg, "timestamp")
                             .B()
                             .B()
                             .G("destination_ip")
                             .Build());
  out.push_back(std::move(s3));
  // 4. Drill into ICMP, inspect replies and packet sizes.
  ATENA_ASSIGN_OR_RETURN(auto s4, Script(t)
                                      .Fs("protocol", "ICMP")
                                      .G("info")
                                      .Fs("info", "Echo (ping) reply")
                                      .G("source_ip")
                                      .B()
                                      .G("length", AggFunc::kCount)
                                      .Build());
  out.push_back(std::move(s4));
  // 5. Timing first: when did the burst happen, then who caused it.
  ATENA_ASSIGN_OR_RETURN(auto s5,
                         Script(t)
                             .G("protocol", AggFunc::kAvg, "timestamp")
                             .Fs("protocol", "ICMP")
                             .G("source_ip", AggFunc::kMin, "timestamp")
                             .Fs("source_ip", "10.0.66.66")
                             .G("destination_ip")
                             .Build());
  out.push_back(std::move(s5));
  return out;
}

Result<Scripts> Cyber2Scripts(const Table& t) {
  Scripts out;
  const std::string kAttacker = "203.0.113.99";
  const std::string kCgi = "/cgi-bin/status.cgi";
  ATENA_ASSIGN_OR_RETURN(auto s1, Script(t)
                                      .G("uri")
                                      .Fs("uri", kCgi)
                                      .G("source_ip")
                                      .Fs("source_ip", kAttacker)
                                      .G("method")
                                      .G("user_agent")
                                      .Build());
  out.push_back(std::move(s1));
  ATENA_ASSIGN_OR_RETURN(auto s2,
                         Script(t)
                             .G("source_ip")
                             .Fs("source_ip", kAttacker)
                             .G("uri")
                             .G("method", AggFunc::kAvg, "response_bytes")
                             .B()
                             .Fs("method", "POST")
                             .G("status", AggFunc::kSum, "response_bytes")
                             .Build());
  out.push_back(std::move(s2));
  ATENA_ASSIGN_OR_RETURN(auto s3, Script(t)
                                      .G("user_agent")
                                      .Fs("user_agent",
                                          "() { :; }; /bin/bash -c 'cat "
                                          "/etc/passwd'")
                                      .G("source_ip")
                                      .G("uri")
                                      .G("method", AggFunc::kMax,
                                         "response_bytes")
                                      .Build());
  out.push_back(std::move(s3));
  ATENA_ASSIGN_OR_RETURN(auto s4,
                         Script(t)
                             .G("method")
                             .Fs("method", "POST")
                             .G("source_ip", AggFunc::kSum, "response_bytes")
                             .Fs("source_ip", kAttacker)
                             .G("uri", AggFunc::kAvg, "timestamp")
                             .Build());
  out.push_back(std::move(s4));
  ATENA_ASSIGN_OR_RETURN(auto s5, Script(t)
                                      .G("status")
                                      .F("response_bytes", CompareOp::kGt,
                                         Value(int64_t{100000}))
                                      .G("source_ip")
                                      .G("uri")
                                      .B()
                                      .G("method")
                                      .Build());
  out.push_back(std::move(s5));
  return out;
}

Result<Scripts> Cyber3Scripts(const Table& t) {
  Scripts out;
  const std::string kPhish = "secure-bank1-login.xyz";
  ATENA_ASSIGN_OR_RETURN(auto s1, Script(t)
                                      .G("host")
                                      .Fs("host", kPhish)
                                      .G("source_ip")
                                      .G("referrer")
                                      .Fs("method", "POST")
                                      .G("url_path")
                                      .B()
                                      .G("status")
                                      .Build());
  out.push_back(std::move(s1));
  ATENA_ASSIGN_OR_RETURN(auto s2, Script(t)
                                      .G("referrer")
                                      .Fs("referrer", "mail.corp.local/inbox")
                                      .G("host")
                                      .G("source_ip")
                                      .B()
                                      .B()
                                      .Fs("host", kPhish)
                                      .G("url_path")
                                      .G("source_ip", AggFunc::kMin, "timestamp")
                                      .Build());
  out.push_back(std::move(s2));
  ATENA_ASSIGN_OR_RETURN(auto s3, Script(t)
                                      .G("method")
                                      .Fs("method", "POST")
                                      .G("host")
                                      .Fs("host", kPhish)
                                      .G("source_ip")
                                      .G("status")
                                      .Build());
  out.push_back(std::move(s3));
  ATENA_ASSIGN_OR_RETURN(auto s4,
                         Script(t)
                             .G("host", AggFunc::kAvg, "bytes")
                             .Fs("host", kPhish)
                             .G("url_path")
                             .G("source_ip", AggFunc::kMin, "timestamp")
                             .Build());
  out.push_back(std::move(s4));
  ATENA_ASSIGN_OR_RETURN(auto s5, Script(t)
                                      .Fs("host", kPhish)
                                      .G("source_ip")
                                      .B()
                                      .Fs("url_path", "/login.php")
                                      .G("method")
                                      .G("referrer")
                                      .G("status", AggFunc::kAvg, "bytes")
                                      .Build());
  out.push_back(std::move(s5));
  return out;
}

Result<Scripts> Cyber4Scripts(const Table& t) {
  Scripts out;
  const std::string kAttacker = "172.16.0.99";
  const std::string kVictim = "192.168.10.5";
  ATENA_ASSIGN_OR_RETURN(auto s1, Script(t)
                                      .G("tcp_flags")
                                      .Fs("tcp_flags", "SYN")
                                      .G("source_ip")
                                      .Fs("source_ip", kAttacker)
                                      .G("destination_ip")
                                      .B()
                                      .G("destination_port")
                                      .Build());
  out.push_back(std::move(s1));
  ATENA_ASSIGN_OR_RETURN(auto s2,
                         Script(t)
                             .G("source_ip")
                             .Fs("source_ip", kAttacker)
                             .G("destination_port", AggFunc::kCount)
                             .B()
                             .G("tcp_flags")
                             .G("destination_ip", AggFunc::kMin, "timestamp")
                             .Build());
  out.push_back(std::move(s2));
  ATENA_ASSIGN_OR_RETURN(auto s3, Script(t)
                                      .Fs("destination_ip", kVictim)
                                      .G("tcp_flags")
                                      .G("source_ip")
                                      .B()
                                      .B()
                                      .B()
                                      .Fs("source_ip", kVictim)
                                      .G("tcp_flags")
                                      .Build());
  out.push_back(std::move(s3));
  ATENA_ASSIGN_OR_RETURN(auto s4, Script(t)
                                      .Fs("tcp_flags", "RST, ACK")
                                      .G("source_ip")
                                      .B()
                                      .B()
                                      .Fs("tcp_flags", "SYN, ACK")
                                      .G("source_ip")
                                      .G("source_port")
                                      .Build());
  out.push_back(std::move(s4));
  ATENA_ASSIGN_OR_RETURN(
      auto s5, Script(t)
                   .G("protocol")
                   .Fs("protocol", "TCP")
                   .G("tcp_flags", AggFunc::kAvg, "timestamp")
                   .Fs("tcp_flags", "SYN")
                   .G("source_ip", AggFunc::kMin, "destination_port")
                   .Build());
  out.push_back(std::move(s5));
  return out;
}

/// Flights gold scripts share the delay narrative (Example 1.1): the
/// monthly pattern, the June spike, the airport/airline/day breakdowns and
/// the delay reasons. `breakdowns` lists categorical columns that actually
/// vary in this subset.
Result<Scripts> FlightsScripts(const Table& t,
                               const std::vector<std::string>& breakdowns) {
  Scripts out;
  const std::string& alt1 = breakdowns[0];
  const std::string& alt2 = breakdowns[1 % breakdowns.size()];
  ATENA_ASSIGN_OR_RETURN(auto s1,
                         Script(t)
                             .G("month", AggFunc::kAvg, "departure_delay")
                             .Fs("month", "June")
                             .G(alt1, AggFunc::kAvg, "departure_delay")
                             .B()
                             .G("delay_reason")
                             .Build());
  out.push_back(std::move(s1));
  ATENA_ASSIGN_OR_RETURN(auto s2,
                         Script(t)
                             .G(alt1, AggFunc::kAvg, "departure_delay")
                             .G("month", AggFunc::kAvg, "arrival_delay")
                             .B()
                             .F("departure_delay", CompareOp::kGt,
                                Value(60.0))
                             .G("delay_reason")
                             .G(alt2, AggFunc::kCount)
                             .Build());
  out.push_back(std::move(s2));
  ATENA_ASSIGN_OR_RETURN(auto s3,
                         Script(t)
                             .G("delay_reason", AggFunc::kAvg,
                                "departure_delay")
                             .Fs("delay_reason", "Weather")
                             .G("month", AggFunc::kCount)
                             .B()
                             .G(alt2, AggFunc::kAvg, "departure_delay")
                             .Build());
  out.push_back(std::move(s3));
  ATENA_ASSIGN_OR_RETURN(auto s4,
                         Script(t)
                             .Fs("month", "June")
                             .G(alt1, AggFunc::kAvg, "departure_delay")
                             .G(alt2, AggFunc::kAvg, "departure_delay")
                             .B()
                             .B()
                             .G("month", AggFunc::kAvg, "arrival_delay")
                             .Build());
  out.push_back(std::move(s4));
  ATENA_ASSIGN_OR_RETURN(auto s5,
                         Script(t)
                             .G("month", AggFunc::kAvg, "departure_delay")
                             .G(alt1, AggFunc::kAvg, "departure_delay")
                             .B()
                             .F("departure_delay", CompareOp::kGt, Value(30.0))
                             .G("delay_reason", AggFunc::kAvg,
                                "arrival_delay")
                             .Build());
  out.push_back(std::move(s5));
  return out;
}

}  // namespace

Result<Scripts> GoldOperationScripts(const Dataset& dataset) {
  const Table& t = *dataset.table;
  const std::string& id = dataset.info.id;
  if (id == "cyber1") return Cyber1Scripts(t);
  if (id == "cyber2") return Cyber2Scripts(t);
  if (id == "cyber3") return Cyber3Scripts(t);
  if (id == "cyber4") return Cyber4Scripts(t);
  if (id == "flights1") {
    return FlightsScripts(t, {"origin_airport", "destination_airport"});
  }
  if (id == "flights2") return FlightsScripts(t, {"airline", "day_of_week"});
  if (id == "flights3") return FlightsScripts(t, {"airline", "day_of_week"});
  if (id == "flights4") return FlightsScripts(t, {"airline", "origin_airport"});
  return Status::NotFound("no gold scripts for dataset '" + id + "'");
}

Result<std::vector<EdaNotebook>> GoldNotebooks(const Dataset& dataset,
                                               const EnvConfig& env_config) {
  ATENA_ASSIGN_OR_RETURN(Scripts scripts, GoldOperationScripts(dataset));
  EdaEnvironment env(dataset, env_config);
  std::vector<EdaNotebook> notebooks;
  notebooks.reserve(scripts.size());
  for (const auto& script : scripts) {
    notebooks.push_back(ReplayOperations(&env, script, "Gold"));
  }
  return notebooks;
}

}  // namespace atena
