#ifndef ATENA_EVAL_RATINGS_H_
#define ATENA_EVAL_RATINGS_H_

#include <vector>

#include "data/dataset.h"
#include "eda/session.h"

namespace atena {

/// Measurable quality profile of a notebook, used by the Figure 4a proxy
/// rating model and by the ablation benches. All values are in [0,1].
struct NotebookQuality {
  double mean_interestingness = 0.0;  // mean per-operation interestingness
  double mean_coherency = 0.0;        // mean P(coherent) per operation
  double mean_diversity = 0.0;        // mean per-display novelty
  double eda_sim_to_gold = 0.0;       // MaxEdaSim against the gold set
  double precision_to_gold = 0.0;     // view precision against the gold set
};

/// Re-scores `notebook` by replaying its operations on a fresh environment
/// with a freshly trained coherency classifier, and compares it against the
/// `gold` reference set. When the notebook IS one of the references (same
/// view sequence), that reference is excluded from the comparison, so gold
/// notebooks are scored leave-one-out.
Result<NotebookQuality> AssessNotebook(const Dataset& dataset,
                                       const EdaNotebook& notebook,
                                       const std::vector<EdaNotebook>& gold,
                                       const EnvConfig& env_config);

/// The four user-study criteria (paper §6.2), each on the 1..7 scale.
struct UserRatings {
  double informativity = 1.0;
  double comprehensibility = 1.0;
  double expertise = 1.0;
  double human_equivalence = 1.0;
};

/// Deterministic proxy for the paper's 40-participant study (DESIGN.md
/// substitution #6): maps the measurable quality profile onto the four 1-7
/// criteria. Weights favor gold-similarity for informativity/human-
/// equivalence and coherency for comprehensibility, matching what the
/// criteria ask readers to judge.
UserRatings ProxyRatings(const NotebookQuality& quality);

}  // namespace atena

#endif  // ATENA_EVAL_RATINGS_H_
