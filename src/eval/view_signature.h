#ifndef ATENA_EVAL_VIEW_SIGNATURE_H_
#define ATENA_EVAL_VIEW_SIGNATURE_H_

#include <string>
#include <vector>

#include "eda/session.h"

namespace atena {

/// A canonical, order-insensitive description of one result display ("view"
/// in the A-EDA benchmark, §6.3): the set of filter predicates, the set of
/// grouped attributes, and the aggregation. Two displays reached through
/// different operation orders but showing the same data have equal
/// signatures.
struct ViewSignature {
  std::vector<std::string> filters;  // sorted "column op term" strings
  std::vector<std::string> groups;   // sorted grouped column names
  std::string aggregation;           // "AGG(column)" or "" when ungrouped

  /// Single-string form used as a BLEU token and hash key.
  std::string ToKey() const;

  bool operator==(const ViewSignature& other) const {
    return filters == other.filters && groups == other.groups &&
           aggregation == other.aggregation;
  }
};

/// Builds the signature of one display.
ViewSignature MakeViewSignature(const Table& table, const Display& display);

/// Signatures of every entry of `notebook`, in notebook order.
std::vector<ViewSignature> NotebookSignatures(const EdaNotebook& notebook);

/// Fine-grained similarity between two views in [0,1] (used by EDA-Sim,
/// following [29]): weighted Jaccard overlap of filter sets (0.4) and group
/// sets (0.4) plus aggregation agreement (0.2). Two empty views are
/// identical (1.0).
double ViewSimilarity(const ViewSignature& a, const ViewSignature& b);

}  // namespace atena

#endif  // ATENA_EVAL_VIEW_SIGNATURE_H_
