#ifndef ATENA_NN_SERIALIZATION_H_
#define ATENA_NN_SERIALIZATION_H_

#include <istream>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/parameter.h"

namespace atena {

/// Serializes a parameter list to a portable text format:
///
///   ATENA-NN v2
///   <param-count>
///   <name> <rows> <cols>
///   <v00> <v01> ...
///   ...
///
/// Values round-trip exactly (printed with max_digits10). Gradients are
/// not saved. Unnamed parameters serialize their name as "_". Enables
/// checkpointing and transferring a trained policy to another dataset with
/// the same schema (the paper's future-work item of generalizing learning
/// across datasets).
/// Writes via AtomicWriteFile (common/file_io.h): the bytes land in a temp
/// file and are renamed over `path`, so an interrupted save can never
/// corrupt an existing checkpoint.
Status SaveParameters(const std::vector<Parameter*>& params,
                      const std::string& path);

/// Renders the ATENA-NN v2 text block for `params` — the exact bytes
/// SaveParameters writes. Exposed so container formats (the ATENA-CKPT
/// training checkpoint, rl/checkpoint.h) can embed a parameter block.
std::string SerializeParameters(const std::vector<Parameter*>& params);

/// Parses an ATENA-NN v1/v2 block from `in` (a file or a position inside a
/// container), validating count, names and shapes against `params`, and
/// stages the matrices into `*staged` in parameter order — the network
/// itself is never touched, so a failed parse can never leave it
/// half-loaded. `source` names the origin for error messages. On success
/// the stream is positioned just past the block's last value.
Status ParseParametersInto(const std::vector<Parameter*>& params,
                           std::istream& in, const std::string& source,
                           std::vector<Matrix>* staged);

/// Loads a checkpoint saved by SaveParameters into `params`. Both the
/// current "ATENA-NN v2" format and the legacy nameless "ATENA-NN v1"
/// format (positional matrices only) are accepted. The count and every
/// shape must match exactly, and v2 names must match the in-memory
/// parameter names where both sides have one (mismatch =
/// FailedPrecondition and the parameters are left unmodified).
Status LoadParameters(const std::vector<Parameter*>& params,
                      const std::string& path);

/// Store-level conveniences: checkpoint every parameter of a network's
/// ParameterStore in creation order.
Status SaveParameters(const ParameterStore& store, const std::string& path);
Status LoadParameters(ParameterStore* store, const std::string& path);

}  // namespace atena

#endif  // ATENA_NN_SERIALIZATION_H_
