#ifndef ATENA_NN_SERIALIZATION_H_
#define ATENA_NN_SERIALIZATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/layers.h"

namespace atena {

/// Serializes a parameter list to a portable text format:
///
///   ATENA-NN v1
///   <param-count>
///   <rows> <cols>
///   <v00> <v01> ...
///   ...
///
/// Values round-trip exactly (printed with max_digits10). Gradients are
/// not saved. Enables checkpointing and transferring a trained policy to
/// another dataset with the same schema (the paper's future-work item of
/// generalizing learning across datasets).
Status SaveParameters(const std::vector<Parameter*>& params,
                      const std::string& path);

/// Loads parameters saved by SaveParameters into `params`. The count and
/// every shape must match exactly (mismatch = FailedPrecondition and the
/// parameters are left unmodified).
Status LoadParameters(const std::vector<Parameter*>& params,
                      const std::string& path);

}  // namespace atena

#endif  // ATENA_NN_SERIALIZATION_H_
