#include "nn/layers.h"

#include <algorithm>
#include <cmath>

namespace atena {

Dense::Dense(int in_features, int out_features, Rng* rng) {
  weight_.value = Matrix(out_features, in_features);
  weight_.grad = Matrix(out_features, in_features);
  bias_.value = Matrix(1, out_features);
  bias_.grad = Matrix(1, out_features);
  // He initialization: N(0, 2/in).
  const double stddev = std::sqrt(2.0 / std::max(1, in_features));
  for (double& w : weight_.value.data()) {
    w = rng->NextGaussian() * stddev;
  }
}

Matrix Dense::Forward(const Matrix& input) {
  input_cache_ = input;
  Matrix out = MatMulTransposeB(input, weight_.value);
  AddRowVectorInPlace(&out, bias_.value);
  return out;
}

Matrix Dense::Backward(const Matrix& grad_output) {
  // dL/dW = grad_outᵀ · input ; dL/db = column sums ; dL/din = grad_out · W.
  AxpyInPlace(&weight_.grad, MatMulTransposeA(grad_output, input_cache_), 1.0);
  AxpyInPlace(&bias_.grad, ColumnSums(grad_output), 1.0);
  return MatMul(grad_output, weight_.value);
}

Matrix Relu::Forward(const Matrix& input) {
  input_cache_ = input;
  Matrix out = input;
  for (double& x : out.data()) x = std::max(0.0, x);
  return out;
}

Matrix Relu::Backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (size_t i = 0; i < grad.size(); ++i) {
    if (input_cache_.data()[i] <= 0.0) grad.data()[i] = 0.0;
  }
  return grad;
}

Matrix TanhLayer::Forward(const Matrix& input) {
  Matrix out = input;
  for (double& x : out.data()) x = std::tanh(x);
  output_cache_ = out;
  return out;
}

Matrix TanhLayer::Backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (size_t i = 0; i < grad.size(); ++i) {
    const double y = output_cache_.data()[i];
    grad.data()[i] *= (1.0 - y * y);
  }
  return grad;
}

Matrix Sequential::Forward(const Matrix& input) {
  Matrix x = input;
  for (auto& layer : layers_) x = layer->Forward(x);
  return x;
}

Matrix Sequential::Backward(const Matrix& grad_output) {
  Matrix g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::Parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Parameters()) params.push_back(p);
  }
  return params;
}

std::unique_ptr<Sequential> MakeMlp(int in_features,
                                    const std::vector<int>& hidden,
                                    int out_features, Rng* rng) {
  auto net = std::make_unique<Sequential>();
  int prev = in_features;
  for (int h : hidden) {
    net->Add(std::make_unique<Dense>(prev, h, rng));
    net->Add(std::make_unique<Relu>());
    prev = h;
  }
  net->Add(std::make_unique<Dense>(prev, out_features, rng));
  return net;
}

void SoftmaxRangeInPlace(Matrix* m, int begin, int end) {
  for (int r = 0; r < m->rows(); ++r) {
    double* row = m->RowPtr(r);
    double max_logit = row[begin];
    for (int j = begin; j < end; ++j) max_logit = std::max(max_logit, row[j]);
    double total = 0.0;
    for (int j = begin; j < end; ++j) {
      row[j] = std::exp(row[j] - max_logit);
      total += row[j];
    }
    if (total > 0.0) {
      for (int j = begin; j < end; ++j) row[j] /= total;
    }
  }
}

}  // namespace atena
