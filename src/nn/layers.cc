#include "nn/layers.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace atena {

Workspace::Slot& Workspace::For(const Layer* layer) {
  for (auto& [owner, slot] : slots_) {
    if (owner == layer) return *slot;
  }
  slots_.emplace_back(layer, std::make_unique<Slot>());
  return *slots_.back().second;
}

Dense::Dense(int in_features, int out_features, ParameterStore* store,
             const std::string& name, Rng* rng) {
  weight_ = store->Create(name + ".weight", out_features, in_features);
  bias_ = store->Create(name + ".bias", 1, out_features);
  // He initialization: N(0, 2/in).
  const double stddev = std::sqrt(2.0 / std::max(1, in_features));
  for (double& w : weight_->value.data()) {
    w = rng->NextGaussian() * stddev;
  }
}

const Matrix& Dense::Forward(const Matrix& input, Workspace* ws) const {
  Workspace::Slot& slot = ws->For(this);
  slot.input = &input;
  if (serving_frozen_ && input.rows() >= 4) {
    // Frozen weights: route multi-row batches through the straight GEMM,
    // whose 4-row register tile (AVX2-dispatched) is ~2x the throughput of
    // the per-output dot products below. Each output element accumulates
    // over k in the same ascending order in both kernels (the tile's
    // zero-skip only elides exact-zero products), so the result bits are
    // identical — a frozen policy serves the same trace down either path.
    MatMulInto(input, weight_t_, &slot.output);
  } else {
    MatMulTransposeBInto(input, weight_->value, &slot.output);
  }
  AddRowVectorInPlace(&slot.output, bias_->value);
  return slot.output;
}

void Dense::PrepareForServing() {
  TransposeInto(weight_->value, &weight_t_);
  serving_frozen_ = true;
}

Matrix Dense::Backward(const Matrix& grad_output, Workspace* ws) const {
  Workspace::Slot& slot = ws->For(this);
  ATENA_CHECK(!serving_frozen_)
      << "Dense::Backward through a layer frozen by PrepareForServing — "
         "training would desync the cached transposed weights";
  ATENA_CHECK(slot.input != nullptr)
      << "Dense::Backward without a matching Forward in this workspace";
  // dL/dW = grad_outᵀ · input ; dL/db = column sums ; dL/din = grad_out · W.
  AxpyInPlace(&weight_->grad, MatMulTransposeA(grad_output, *slot.input), 1.0);
  AxpyInPlace(&bias_->grad, ColumnSums(grad_output), 1.0);
  return MatMul(grad_output, weight_->value);
}

const Matrix& Relu::Forward(const Matrix& input, Workspace* ws) const {
  Workspace::Slot& slot = ws->For(this);
  slot.input = &input;
  slot.output.Resize(input.rows(), input.cols());
  const auto& in = input.data();
  auto& out = slot.output.data();
  for (size_t i = 0; i < in.size(); ++i) out[i] = std::max(0.0, in[i]);
  return slot.output;
}

Matrix Relu::Backward(const Matrix& grad_output, Workspace* ws) const {
  Workspace::Slot& slot = ws->For(this);
  ATENA_CHECK(slot.input != nullptr)
      << "Relu::Backward without a matching Forward in this workspace";
  Matrix grad = grad_output;
  for (size_t i = 0; i < grad.size(); ++i) {
    if (slot.input->data()[i] <= 0.0) grad.data()[i] = 0.0;
  }
  return grad;
}

const Matrix& TanhLayer::Forward(const Matrix& input, Workspace* ws) const {
  Workspace::Slot& slot = ws->For(this);
  slot.output.Resize(input.rows(), input.cols());
  const auto& in = input.data();
  auto& out = slot.output.data();
  for (size_t i = 0; i < in.size(); ++i) out[i] = std::tanh(in[i]);
  return slot.output;
}

Matrix TanhLayer::Backward(const Matrix& grad_output, Workspace* ws) const {
  const Workspace::Slot& slot = ws->For(this);
  Matrix grad = grad_output;
  for (size_t i = 0; i < grad.size(); ++i) {
    const double y = slot.output.data()[i];
    grad.data()[i] *= (1.0 - y * y);
  }
  return grad;
}

const Matrix& Sequential::Forward(const Matrix& input, Workspace* ws) const {
  const Matrix* x = &input;
  for (const auto& layer : layers_) x = &layer->Forward(*x, ws);
  return *x;
}

Matrix Sequential::Backward(const Matrix& grad_output, Workspace* ws) const {
  Matrix g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g, ws);
  }
  return g;
}

void Sequential::PrepareForServing() {
  for (const auto& layer : layers_) layer->PrepareForServing();
}

std::vector<Parameter*> Sequential::Parameters() const {
  std::vector<Parameter*> params;
  for (const auto& layer : layers_) {
    for (Parameter* p : layer->Parameters()) params.push_back(p);
  }
  return params;
}

std::unique_ptr<Sequential> MakeMlp(int in_features,
                                    const std::vector<int>& hidden,
                                    int out_features, ParameterStore* store,
                                    const std::string& name, Rng* rng) {
  auto net = std::make_unique<Sequential>();
  int prev = in_features;
  int index = 0;
  for (int h : hidden) {
    net->Add(std::make_unique<Dense>(
        prev, h, store, name + "." + std::to_string(index++), rng));
    net->Add(std::make_unique<Relu>());
    prev = h;
  }
  net->Add(std::make_unique<Dense>(
      prev, out_features, store, name + "." + std::to_string(index), rng));
  return net;
}

void SoftmaxRangeInPlace(Matrix* m, int begin, int end) {
  for (int r = 0; r < m->rows(); ++r) {
    double* row = m->RowPtr(r);
    double max_logit = row[begin];
    for (int j = begin; j < end; ++j) max_logit = std::max(max_logit, row[j]);
    double total = 0.0;
    for (int j = begin; j < end; ++j) {
      row[j] = std::exp(row[j] - max_logit);
      total += row[j];
    }
    if (total > 0.0) {
      for (int j = begin; j < end; ++j) row[j] /= total;
    }
  }
}

}  // namespace atena
