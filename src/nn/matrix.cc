#include "nn/matrix.h"

#include "common/logging.h"

namespace atena {

Matrix Matrix::FromRow(const std::vector<double>& row) {
  Matrix m(1, static_cast<int>(row.size()));
  m.data_ = row;
  return m;
}

void Matrix::Fill(double value) {
  for (double& x : data_) x = value;
}

std::string Matrix::ShapeString() const {
  return "(" + std::to_string(rows_) + "x" + std::to_string(cols_) + ")";
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  ATENA_CHECK(a.cols() == b.rows())
      << "MatMul shape mismatch " << a.ShapeString() << " * "
      << b.ShapeString();
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    const double* arow = a.RowPtr(i);
    double* orow = out.RowPtr(i);
    for (int k = 0; k < a.cols(); ++k) {
      const double av = arow[k];
      if (av == 0.0) continue;
      const double* brow = b.RowPtr(k);
      for (int j = 0; j < b.cols(); ++j) {
        orow[j] += av * brow[j];
      }
    }
  }
  return out;
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  ATENA_CHECK(a.cols() == b.cols())
      << "MatMulTransposeB shape mismatch " << a.ShapeString() << " * "
      << b.ShapeString() << "^T";
  Matrix out(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    const double* arow = a.RowPtr(i);
    double* orow = out.RowPtr(i);
    for (int j = 0; j < b.rows(); ++j) {
      const double* brow = b.RowPtr(j);
      double acc = 0.0;
      for (int k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      orow[j] = acc;
    }
  }
  return out;
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  ATENA_CHECK(a.rows() == b.rows())
      << "MatMulTransposeA shape mismatch " << a.ShapeString() << "^T * "
      << b.ShapeString();
  Matrix out(a.cols(), b.cols());
  for (int r = 0; r < a.rows(); ++r) {
    const double* arow = a.RowPtr(r);
    const double* brow = b.RowPtr(r);
    for (int i = 0; i < a.cols(); ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* orow = out.RowPtr(i);
      for (int j = 0; j < b.cols(); ++j) {
        orow[j] += av * brow[j];
      }
    }
  }
  return out;
}

void AddRowVectorInPlace(Matrix* m, const Matrix& bias) {
  ATENA_CHECK(bias.rows() == 1 && bias.cols() == m->cols())
      << "bias shape " << bias.ShapeString() << " vs " << m->ShapeString();
  for (int i = 0; i < m->rows(); ++i) {
    double* row = m->RowPtr(i);
    const double* b = bias.RowPtr(0);
    for (int j = 0; j < m->cols(); ++j) row[j] += b[j];
  }
}

Matrix ColumnSums(const Matrix& m) {
  Matrix out(1, m.cols());
  double* acc = out.RowPtr(0);
  for (int i = 0; i < m.rows(); ++i) {
    const double* row = m.RowPtr(i);
    for (int j = 0; j < m.cols(); ++j) acc[j] += row[j];
  }
  return out;
}

void AxpyInPlace(Matrix* a, const Matrix& b, double scale) {
  ATENA_CHECK(a->size() == b.size())
      << "Axpy shape mismatch " << a->ShapeString() << " vs "
      << b.ShapeString();
  for (size_t i = 0; i < a->size(); ++i) {
    a->data()[i] += scale * b.data()[i];
  }
}

}  // namespace atena
