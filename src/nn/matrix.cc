#include "nn/matrix.h"

#include "common/logging.h"

namespace atena {

Matrix Matrix::FromRow(const std::vector<double>& row) {
  Matrix m(1, static_cast<int>(row.size()));
  m.data_ = row;
  return m;
}

void Matrix::Fill(double value) {
  for (double& x : data_) x = value;
}

void Matrix::Resize(int rows, int cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(static_cast<size_t>(rows) * static_cast<size_t>(cols));
}

std::string Matrix::ShapeString() const {
  return "(" + std::to_string(rows_) + "x" + std::to_string(cols_) + ")";
}

// The multi-row kernels below process four rows of `a` per traversal of
// `b`. Each output element still accumulates its products in plain k-order,
// so results are bit-identical to the one-row-at-a-time path — but the four
// independent accumulator chains hide FP-add latency (without -ffast-math
// the compiler may not reassociate a single dot product), which is where
// the batched forward pass gets its throughput edge over per-sample calls.

namespace {
// Two-lane double vector; aligned(8) so loads/stores from arbitrary row
// offsets lower to unaligned SSE2 moves. Lane arithmetic is plain IEEE
// mulpd/addpd (baseline x86-64 has no FMA, and we never enable it), so
// every output element still accumulates in exact serial k-order.
typedef double v2df __attribute__((vector_size(16), aligned(8)));

inline v2df LoadV2(const double* p) {
  return *reinterpret_cast<const v2df*>(p);
}
inline void StoreV2(double* p, v2df v) { *reinterpret_cast<v2df*>(p) = v; }

// Four-lane variant for the AVX2 kernel below. Still no FMA: the target
// attribute enables only avx2, so `s += w * b` lowers to vmulpd+vaddpd,
// whose lanes are the same IEEE mul-then-add as the SSE2 and scalar
// paths. Every output element is one lane accumulating in serial k-order,
// so all three kernels produce bit-identical results — which CPU runs the
// math can never change a trace, a checkpoint, or a training curve.
typedef double v4df __attribute__((vector_size(32), aligned(8)));

__attribute__((target("avx2"))) inline v4df LoadV4(const double* p) {
  return *reinterpret_cast<const v4df*>(p);
}
__attribute__((target("avx2"))) inline void StoreV4(double* p, v4df v) {
  *reinterpret_cast<v4df*>(p) = v;
}

// 4x8 register tile (8 ymm accumulators live across the whole k-loop):
// one traversal of b feeds four rows of output, which is where the
// batched forward pass earns its per-row advantage over single-row calls
// — a lone row has no tile to amortize the b traffic across.
__attribute__((target("avx2"))) void MatMul4RowsAvx2(
    const double* a0, const double* a1, const double* a2, const double* a3,
    const Matrix& b, int k_len, double* o0, double* o1, double* o2,
    double* o3, int* j_done) {
  const int cols = b.cols();
  int j = 0;
  for (; j + 8 <= cols; j += 8) {
    v4df s0l{}, s0h{}, s1l{}, s1h{}, s2l{}, s2h{}, s3l{}, s3h{};
    for (int k = 0; k < k_len; ++k) {
      const double v0 = a0[k], v1 = a1[k], v2 = a2[k], v3 = a3[k];
      if (v0 == 0.0 && v1 == 0.0 && v2 == 0.0 && v3 == 0.0) continue;
      const double* brow = b.RowPtr(k) + j;
      const v4df bl = LoadV4(brow), bh = LoadV4(brow + 4);
      const v4df w0{v0, v0, v0, v0}, w1{v1, v1, v1, v1};
      const v4df w2{v2, v2, v2, v2}, w3{v3, v3, v3, v3};
      s0l += w0 * bl;
      s0h += w0 * bh;
      s1l += w1 * bl;
      s1h += w1 * bh;
      s2l += w2 * bl;
      s2h += w2 * bh;
      s3l += w3 * bl;
      s3h += w3 * bh;
    }
    StoreV4(o0 + j, s0l);
    StoreV4(o0 + j + 4, s0h);
    StoreV4(o1 + j, s1l);
    StoreV4(o1 + j + 4, s1h);
    StoreV4(o2 + j, s2l);
    StoreV4(o2 + j + 4, s2h);
    StoreV4(o3 + j, s3l);
    StoreV4(o3 + j + 4, s3h);
  }
  *j_done = j;
}

bool HasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
}
}  // namespace

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  ATENA_CHECK(a.cols() == b.rows())
      << "MatMul shape mismatch " << a.ShapeString() << " * "
      << b.ShapeString();
  out->Resize(a.rows(), b.cols());
  out->Fill(0.0);
  const int cols = b.cols();
  int i = 0;
  for (; i + 4 <= a.rows(); i += 4) {
    const double* a0 = a.RowPtr(i);
    const double* a1 = a.RowPtr(i + 1);
    const double* a2 = a.RowPtr(i + 2);
    const double* a3 = a.RowPtr(i + 3);
    double* o0 = out->RowPtr(i);
    double* o1 = out->RowPtr(i + 1);
    double* o2 = out->RowPtr(i + 2);
    double* o3 = out->RowPtr(i + 3);
    // 4x4 register tile: the sixteen partial sums live in SIMD registers
    // across the whole k-loop, so the inner loop touches only a and b —
    // no per-k output traffic. Each element still sums over k in order.
    // On AVX2 hardware a 4x8 tile handles the bulk of the columns first
    // (runtime-dispatched, bit-identical lanes — see MatMul4RowsAvx2).
    int j = 0;
    if (HasAvx2()) {
      MatMul4RowsAvx2(a0, a1, a2, a3, b, a.cols(), o0, o1, o2, o3, &j);
    }
    for (; j + 4 <= cols; j += 4) {
      v2df s0l{0.0, 0.0}, s0h{0.0, 0.0};
      v2df s1l{0.0, 0.0}, s1h{0.0, 0.0};
      v2df s2l{0.0, 0.0}, s2h{0.0, 0.0};
      v2df s3l{0.0, 0.0}, s3h{0.0, 0.0};
      for (int k = 0; k < a.cols(); ++k) {
        const double v0 = a0[k], v1 = a1[k], v2 = a2[k], v3 = a3[k];
        // Skipping all-zero columns (common with ReLU-masked gradients)
        // only ever skips exact ±0 contributions, results are unchanged.
        if (v0 == 0.0 && v1 == 0.0 && v2 == 0.0 && v3 == 0.0) continue;
        const double* brow = b.RowPtr(k) + j;
        const v2df bl = LoadV2(brow), bh = LoadV2(brow + 2);
        const v2df w0{v0, v0}, w1{v1, v1}, w2{v2, v2}, w3{v3, v3};
        s0l += w0 * bl;
        s0h += w0 * bh;
        s1l += w1 * bl;
        s1h += w1 * bh;
        s2l += w2 * bl;
        s2h += w2 * bh;
        s3l += w3 * bl;
        s3h += w3 * bh;
      }
      StoreV2(o0 + j, s0l);
      StoreV2(o0 + j + 2, s0h);
      StoreV2(o1 + j, s1l);
      StoreV2(o1 + j + 2, s1h);
      StoreV2(o2 + j, s2l);
      StoreV2(o2 + j + 2, s2h);
      StoreV2(o3 + j, s3l);
      StoreV2(o3 + j + 2, s3h);
    }
    for (; j < cols; ++j) {
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (int k = 0; k < a.cols(); ++k) {
        const double v0 = a0[k], v1 = a1[k], v2 = a2[k], v3 = a3[k];
        if (v0 == 0.0 && v1 == 0.0 && v2 == 0.0 && v3 == 0.0) continue;
        const double bv = b.RowPtr(k)[j];
        s0 += v0 * bv;
        s1 += v1 * bv;
        s2 += v2 * bv;
        s3 += v3 * bv;
      }
      o0[j] = s0;
      o1[j] = s1;
      o2[j] = s2;
      o3[j] = s3;
    }
  }
  for (; i < a.rows(); ++i) {
    const double* arow = a.RowPtr(i);
    double* orow = out->RowPtr(i);
    for (int k = 0; k < a.cols(); ++k) {
      const double av = arow[k];
      if (av == 0.0) continue;
      const double* brow = b.RowPtr(k);
      for (int j = 0; j < cols; ++j) {
        orow[j] += av * brow[j];
      }
    }
  }
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out;
  MatMulInto(a, b, &out);
  return out;
}

void MatMulTransposeBInto(const Matrix& a, const Matrix& b, Matrix* out) {
  ATENA_CHECK(a.cols() == b.cols())
      << "MatMulTransposeB shape mismatch " << a.ShapeString() << " * "
      << b.ShapeString() << "^T";
  out->Resize(a.rows(), b.rows());
  const int k_len = a.cols();
  int i = 0;
  for (; i + 4 <= a.rows(); i += 4) {
    const double* a0 = a.RowPtr(i);
    const double* a1 = a.RowPtr(i + 1);
    const double* a2 = a.RowPtr(i + 2);
    const double* a3 = a.RowPtr(i + 3);
    double* o0 = out->RowPtr(i);
    double* o1 = out->RowPtr(i + 1);
    double* o2 = out->RowPtr(i + 2);
    double* o3 = out->RowPtr(i + 3);
    for (int j = 0; j < b.rows(); ++j) {
      const double* brow = b.RowPtr(j);
      double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
      for (int k = 0; k < k_len; ++k) {
        const double bv = brow[k];
        acc0 += a0[k] * bv;
        acc1 += a1[k] * bv;
        acc2 += a2[k] * bv;
        acc3 += a3[k] * bv;
      }
      o0[j] = acc0;
      o1[j] = acc1;
      o2[j] = acc2;
      o3[j] = acc3;
    }
  }
  for (; i < a.rows(); ++i) {
    const double* arow = a.RowPtr(i);
    double* orow = out->RowPtr(i);
    for (int j = 0; j < b.rows(); ++j) {
      const double* brow = b.RowPtr(j);
      double acc = 0.0;
      for (int k = 0; k < k_len; ++k) acc += arow[k] * brow[k];
      orow[j] = acc;
    }
  }
}

void TransposeInto(const Matrix& m, Matrix* out) {
  out->Resize(m.cols(), m.rows());
  for (int i = 0; i < m.rows(); ++i) {
    const double* row = m.RowPtr(i);
    for (int j = 0; j < m.cols(); ++j) {
      (*out)(j, i) = row[j];
    }
  }
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  Matrix out;
  MatMulTransposeBInto(a, b, &out);
  return out;
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  ATENA_CHECK(a.rows() == b.rows())
      << "MatMulTransposeA shape mismatch " << a.ShapeString() << "^T * "
      << b.ShapeString();
  Matrix out(a.cols(), b.cols());
  for (int r = 0; r < a.rows(); ++r) {
    const double* arow = a.RowPtr(r);
    const double* brow = b.RowPtr(r);
    for (int i = 0; i < a.cols(); ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* orow = out.RowPtr(i);
      for (int j = 0; j < b.cols(); ++j) {
        orow[j] += av * brow[j];
      }
    }
  }
  return out;
}

void AddRowVectorInPlace(Matrix* m, const Matrix& bias) {
  ATENA_CHECK(bias.rows() == 1 && bias.cols() == m->cols())
      << "bias shape " << bias.ShapeString() << " vs " << m->ShapeString();
  for (int i = 0; i < m->rows(); ++i) {
    double* row = m->RowPtr(i);
    const double* b = bias.RowPtr(0);
    for (int j = 0; j < m->cols(); ++j) row[j] += b[j];
  }
}

Matrix ColumnSums(const Matrix& m) {
  Matrix out(1, m.cols());
  double* acc = out.RowPtr(0);
  for (int i = 0; i < m.rows(); ++i) {
    const double* row = m.RowPtr(i);
    for (int j = 0; j < m.cols(); ++j) acc[j] += row[j];
  }
  return out;
}

void AxpyInPlace(Matrix* a, const Matrix& b, double scale) {
  ATENA_CHECK(a->size() == b.size())
      << "Axpy shape mismatch " << a->ShapeString() << " vs "
      << b.ShapeString();
  for (size_t i = 0; i < a->size(); ++i) {
    a->data()[i] += scale * b.data()[i];
  }
}

}  // namespace atena
