#ifndef ATENA_NN_PARAMETER_H_
#define ATENA_NN_PARAMETER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.h"

namespace atena {

/// A learnable tensor and its accumulated gradient. `name` identifies the
/// parameter inside its ParameterStore (and in checkpoints); parameters
/// created outside a store may leave it empty.
struct Parameter {
  Matrix value;
  Matrix grad;
  std::string name;
};

/// Owns every learnable tensor of one network graph.
///
/// The store is the write side of the substrate's parameter/activation
/// split: layers hold `Parameter*` views into it and keep no activation
/// state of their own (that lives in per-pass Workspaces), so a single
/// store can serve any number of concurrent or batched forward passes.
/// Parameter addresses are stable for the lifetime of the store.
class ParameterStore {
 public:
  ParameterStore() = default;
  ParameterStore(const ParameterStore&) = delete;
  ParameterStore& operator=(const ParameterStore&) = delete;

  /// Creates a zero-initialized (rows × cols) parameter. `name` must be
  /// unique within the store and free of whitespace (it is written verbatim
  /// into checkpoints).
  Parameter* Create(const std::string& name, int rows, int cols);

  /// The parameter named `name`, or nullptr.
  Parameter* Find(const std::string& name) const;

  /// All parameters in creation order — the canonical order used by
  /// optimizers (Adam state is positional) and checkpoints.
  std::vector<Parameter*> All() const;

  size_t size() const { return params_.size(); }

  /// Total number of scalar values across all parameters.
  int64_t NumScalars() const;

 private:
  std::vector<std::unique_ptr<Parameter>> params_;
};

}  // namespace atena

#endif  // ATENA_NN_PARAMETER_H_
