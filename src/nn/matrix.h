#ifndef ATENA_NN_MATRIX_H_
#define ATENA_NN_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

namespace atena {

/// Dense row-major matrix of doubles — the only tensor type the network
/// substrate needs (all ATENA networks are small MLPs; batches are rows).
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), fill) {}

  static Matrix FromRow(const std::vector<double>& row);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(int r, int c) {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double* RowPtr(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const double* RowPtr(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  void Fill(double value);
  std::string ShapeString() const;

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

/// out = a (r×k) * b (k×c). Shapes are checked fatally (programmer error).
Matrix MatMul(const Matrix& a, const Matrix& b);
/// out = a (r×k) * bᵀ where b is (c×k).
Matrix MatMulTransposeB(const Matrix& a, const Matrix& b);
/// out = aᵀ (k×r) * b (r×c), yielding (k×c) — wait, aᵀ is (k×r) when a is
/// (r×k); used for weight gradients: gradᵀ·input.
Matrix MatMulTransposeA(const Matrix& a, const Matrix& b);

/// Adds `bias` (1×c) to every row of `m` in place.
void AddRowVectorInPlace(Matrix* m, const Matrix& bias);
/// Column sums of `m` as a (1×c) matrix.
Matrix ColumnSums(const Matrix& m);
/// Element-wise a += scale * b.
void AxpyInPlace(Matrix* a, const Matrix& b, double scale);

}  // namespace atena

#endif  // ATENA_NN_MATRIX_H_
