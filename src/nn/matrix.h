#ifndef ATENA_NN_MATRIX_H_
#define ATENA_NN_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

namespace atena {

/// Dense row-major matrix of doubles — the only tensor type the network
/// substrate needs (all ATENA networks are small MLPs; batches are rows).
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), fill) {}

  static Matrix FromRow(const std::vector<double>& row);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(int r, int c) {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double* RowPtr(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const double* RowPtr(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  void Fill(double value);

  /// Reshapes to (rows × cols) without preserving element values. Existing
  /// capacity is reused, so workspace buffers resized to a recurring shape
  /// stop allocating after the first pass.
  void Resize(int rows, int cols);

  std::string ShapeString() const;

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

/// out = a (r×k) * b (k×c). Shapes are checked fatally (programmer error).
Matrix MatMul(const Matrix& a, const Matrix& b);
/// out = a (r×k) * bᵀ where b is (c×k), yielding (r×c).
Matrix MatMulTransposeB(const Matrix& a, const Matrix& b);
/// out = aᵀ * b where a is (r×k) and b is (r×c), yielding (k×c). Used for
/// weight gradients: dW = grad_outputᵀ · input.
Matrix MatMulTransposeA(const Matrix& a, const Matrix& b);

/// Destination-passing variants: resize `out` and write the product into
/// it, reusing its buffer. Results are bit-identical to the value-returning
/// forms (each output element accumulates in the same order).
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out);
void MatMulTransposeBInto(const Matrix& a, const Matrix& b, Matrix* out);

/// out = mᵀ, resizing `out` to (cols × rows) and reusing its buffer.
void TransposeInto(const Matrix& m, Matrix* out);

/// Adds `bias` (1×c) to every row of `m` in place.
void AddRowVectorInPlace(Matrix* m, const Matrix& bias);
/// Column sums of `m` as a (1×c) matrix.
Matrix ColumnSums(const Matrix& m);
/// Element-wise a += scale * b.
void AxpyInPlace(Matrix* a, const Matrix& b, double scale);

}  // namespace atena

#endif  // ATENA_NN_MATRIX_H_
