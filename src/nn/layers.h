#ifndef ATENA_NN_LAYERS_H_
#define ATENA_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "nn/matrix.h"

namespace atena {

/// A learnable tensor and its accumulated gradient.
struct Parameter {
  Matrix value;
  Matrix grad;
};

/// A differentiable layer with manual backprop. Forward caches whatever the
/// matching Backward needs; layers are therefore stateful per pass and not
/// thread-safe (each trainer owns its network).
class Layer {
 public:
  virtual ~Layer() = default;

  /// input: (batch × in_features) -> (batch × out_features).
  virtual Matrix Forward(const Matrix& input) = 0;

  /// grad_output: (batch × out_features). Accumulates parameter gradients
  /// and returns the gradient w.r.t. the layer input.
  virtual Matrix Backward(const Matrix& grad_output) = 0;

  /// Learnable parameters (may be empty).
  virtual std::vector<Parameter*> Parameters() { return {}; }
};

/// Fully-connected layer out = in·Wᵀ + b. Weights use He initialization
/// (suited to the ReLU trunks of the paper's architecture).
class Dense final : public Layer {
 public:
  Dense(int in_features, int out_features, Rng* rng);

  Matrix Forward(const Matrix& input) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::vector<Parameter*> Parameters() override { return {&weight_, &bias_}; }

  int in_features() const { return weight_.value.cols(); }
  int out_features() const { return weight_.value.rows(); }

 private:
  Parameter weight_;  // (out × in)
  Parameter bias_;    // (1 × out)
  Matrix input_cache_;
};

/// Rectified linear unit.
class Relu final : public Layer {
 public:
  Matrix Forward(const Matrix& input) override;
  Matrix Backward(const Matrix& grad_output) override;

 private:
  Matrix input_cache_;
};

/// Hyperbolic tangent.
class TanhLayer final : public Layer {
 public:
  Matrix Forward(const Matrix& input) override;
  Matrix Backward(const Matrix& grad_output) override;

 private:
  Matrix output_cache_;
};

/// A plain sequential network.
class Sequential final : public Layer {
 public:
  Sequential() = default;

  void Add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  Matrix Forward(const Matrix& input) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::vector<Parameter*> Parameters() override;

  size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Builds a ReLU MLP: in -> hidden[0] -> ... -> hidden.back() -> out with
/// ReLU between all Dense layers (none after the final one).
std::unique_ptr<Sequential> MakeMlp(int in_features,
                                    const std::vector<int>& hidden,
                                    int out_features, Rng* rng);

/// In-place row-wise numerically-stable softmax over columns [begin, end).
void SoftmaxRangeInPlace(Matrix* m, int begin, int end);

}  // namespace atena

#endif  // ATENA_NN_LAYERS_H_
