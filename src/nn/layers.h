#ifndef ATENA_NN_LAYERS_H_
#define ATENA_NN_LAYERS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "nn/matrix.h"
#include "nn/parameter.h"

namespace atena {

class Layer;

/// Per-pass activation storage — the read/write side of the substrate's
/// parameter/activation split. A layer graph holds only parameters (owned
/// by a ParameterStore); everything a forward pass produces, and everything
/// the matching backward pass needs to consume, lives in a Workspace the
/// caller supplies.
///
/// Thread-safety contract: Forward never touches layer state, so any number
/// of forward passes may run concurrently over one shared graph as long as
/// each uses its own Workspace. Backward accumulates into the shared
/// parameter gradients and must be externally serialized. Reusing one
/// workspace across sequential passes recycles its buffers, so steady-state
/// acting performs no allocation.
class Workspace {
 public:
  /// Activation state one layer keeps in this workspace.
  struct Slot {
    /// Borrowed pointer to the input of the layer's last Forward through
    /// this workspace. Consumed by the matching Backward; the caller must
    /// keep the input matrix alive and unmodified until then.
    const Matrix* input = nullptr;
    /// The layer's output, owned by the workspace and reused across passes.
    /// Matrices returned by Forward alias this storage — treat them as
    /// read-only and consume them before the next pass overwrites them.
    Matrix output;
  };

  /// The slot of `layer`, created on first use. References stay stable.
  Slot& For(const Layer* layer);

 private:
  // Networks are tiny (≤ ~10 layers); a linear scan beats hashing. Slots
  // are heap-boxed so references survive vector growth.
  std::vector<std::pair<const Layer*, std::unique_ptr<Slot>>> slots_;
};

/// A differentiable layer with manual backprop over a stateless graph:
/// layers own no activations, only `Parameter*` views into a shared
/// ParameterStore. All per-pass state goes through the Workspace argument
/// (see Workspace for the thread-safety contract).
class Layer {
 public:
  virtual ~Layer() = default;

  /// input: (batch × in_features) -> (batch × out_features). The result is
  /// stored in `ws` and stays valid until this layer's next Forward through
  /// the same workspace.
  virtual const Matrix& Forward(const Matrix& input, Workspace* ws) const = 0;

  /// grad_output: (batch × out_features). Consumes the activations recorded
  /// in `ws` by the matching Forward, accumulates parameter gradients, and
  /// returns the gradient w.r.t. the layer input.
  virtual Matrix Backward(const Matrix& grad_output, Workspace* ws) const = 0;

  /// Learnable parameters (may be empty).
  virtual std::vector<Parameter*> Parameters() const { return {}; }

  /// Declares the layer's parameters frozen and lets it precompute
  /// inference-only caches (Dense caches Wᵀ so batched forwards can use the
  /// register-tiled straight-GEMM kernel). The caller promises parameters
  /// will not change afterwards; Backward through a frozen layer is a fatal
  /// error. Safe to call again after a deliberate parameter mutation (e.g.
  /// a checkpoint load) to rebuild the caches.
  virtual void PrepareForServing() {}
};

/// Fully-connected layer out = in·Wᵀ + b. Weights use He initialization
/// (suited to the ReLU trunks of the paper's architecture). The weight and
/// bias are created in `store` as "<name>.weight" / "<name>.bias".
class Dense final : public Layer {
 public:
  Dense(int in_features, int out_features, ParameterStore* store,
        const std::string& name, Rng* rng);

  const Matrix& Forward(const Matrix& input, Workspace* ws) const override;
  Matrix Backward(const Matrix& grad_output, Workspace* ws) const override;
  std::vector<Parameter*> Parameters() const override {
    return {weight_, bias_};
  }
  void PrepareForServing() override;

  int in_features() const { return weight_->value.cols(); }
  int out_features() const { return weight_->value.rows(); }

 private:
  Parameter* weight_;  // (out × in)
  Parameter* bias_;    // (1 × out)
  // Wᵀ (in × out), cached by PrepareForServing so multi-row forwards can
  // run the tiled MatMulInto kernel instead of per-output dot products.
  // Bit-identical results either way: both kernels accumulate each output
  // element over k in ascending order. Empty until frozen.
  Matrix weight_t_;
  bool serving_frozen_ = false;
};

/// Rectified linear unit.
class Relu final : public Layer {
 public:
  const Matrix& Forward(const Matrix& input, Workspace* ws) const override;
  Matrix Backward(const Matrix& grad_output, Workspace* ws) const override;
};

/// Hyperbolic tangent.
class TanhLayer final : public Layer {
 public:
  const Matrix& Forward(const Matrix& input, Workspace* ws) const override;
  Matrix Backward(const Matrix& grad_output, Workspace* ws) const override;
};

/// A plain sequential network.
class Sequential final : public Layer {
 public:
  Sequential() = default;

  void Add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  const Matrix& Forward(const Matrix& input, Workspace* ws) const override;
  Matrix Backward(const Matrix& grad_output, Workspace* ws) const override;
  std::vector<Parameter*> Parameters() const override;
  void PrepareForServing() override;

  size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Builds a ReLU MLP: in -> hidden[0] -> ... -> hidden.back() -> out with
/// ReLU between all Dense layers (none after the final one). Dense layers
/// register their parameters in `store` as "<name>.0", "<name>.1", ...
std::unique_ptr<Sequential> MakeMlp(int in_features,
                                    const std::vector<int>& hidden,
                                    int out_features, ParameterStore* store,
                                    const std::string& name, Rng* rng);

/// In-place row-wise numerically-stable softmax over columns [begin, end).
void SoftmaxRangeInPlace(Matrix* m, int begin, int end);

}  // namespace atena

#endif  // ATENA_NN_LAYERS_H_
