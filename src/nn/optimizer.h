#ifndef ATENA_NN_OPTIMIZER_H_
#define ATENA_NN_OPTIMIZER_H_

#include <vector>

#include "nn/parameter.h"

namespace atena {

/// Zeroes all accumulated gradients.
void ZeroGradients(const std::vector<Parameter*>& params);

/// Outcome of one ClipGradientsByNorm call. `pre_clip_norm` is the global
/// L2 norm before any rescaling (non-finite when any gradient was NaN/inf);
/// `nonfinite_count` is how many individual gradient values were NaN/inf
/// (all zeroed when > 0), so callers can tell "clipped" from "zeroed-NaN";
/// `clipped` is true when gradients were rescaled to fit `max_norm`.
struct GradClipResult {
  double pre_clip_norm = 0.0;
  int64_t nonfinite_count = 0;
  bool clipped = false;
};

/// Rescales gradients so their global L2 norm is at most `max_norm`.
/// A non-finite norm (an inf/NaN gradient anywhere, e.g. from a degenerate
/// loss) zeroes every gradient instead of scaling — the subsequent
/// optimizer step becomes a no-op rather than poisoning the weights with
/// NaNs — and reports the damage in the returned GradClipResult instead of
/// hiding it.
GradClipResult ClipGradientsByNorm(const std::vector<Parameter*>& params,
                                   double max_norm);

/// Plain SGD: value -= lr * grad.
class Sgd {
 public:
  explicit Sgd(double learning_rate) : learning_rate_(learning_rate) {}
  void Step(const std::vector<Parameter*>& params);

 private:
  double learning_rate_;
};

/// Adam (Kingma & Ba). State is keyed by position in the parameter list, so
/// call Step with the same parameter vector every time.
class Adam {
 public:
  struct Options {
    double learning_rate = 3e-4;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
  };

  Adam() : Adam(Options()) {}
  explicit Adam(Options options) : options_(options) {}
  explicit Adam(double learning_rate) {
    options_.learning_rate = learning_rate;
  }

  void Step(const std::vector<Parameter*>& params);
  int64_t step_count() const { return step_; }

  /// The effective learning rate. Mutable so training guardrails can back
  /// it off after a rollback without rebuilding optimizer state.
  double learning_rate() const { return options_.learning_rate; }
  void set_learning_rate(double lr) { options_.learning_rate = lr; }

  /// Checkpoint accessors: the first/second moment estimates, positionally
  /// matching the parameter list of every Step call. Empty until the first
  /// Step.
  const std::vector<Matrix>& first_moments() const { return m_; }
  const std::vector<Matrix>& second_moments() const { return v_; }

  /// Restores state captured via step_count()/first_moments()/
  /// second_moments(), after which Step continues bit-identically to the
  /// optimizer the state was captured from. `m` and `v` must be parallel
  /// vectors; their shapes are validated against the parameter list on the
  /// next Step.
  void SetState(int64_t step, std::vector<Matrix> m, std::vector<Matrix> v);

 private:
  Options options_;
  int64_t step_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace atena

#endif  // ATENA_NN_OPTIMIZER_H_
