#include "nn/serialization.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

namespace atena {

namespace {
constexpr char kMagicV1[] = "ATENA-NN v1";
constexpr char kMagicV2[] = "ATENA-NN v2";
}  // namespace

Status SaveParameters(const std::vector<Parameter*>& params,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << kMagicV2 << "\n" << params.size() << "\n";
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const Parameter* p : params) {
    out << (p->name.empty() ? "_" : p->name) << " " << p->value.rows() << " "
        << p->value.cols() << "\n";
    const auto& data = p->value.data();
    for (size_t i = 0; i < data.size(); ++i) {
      out << data[i] << (i + 1 == data.size() ? "" : " ");
    }
    out << "\n";
  }
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

Status LoadParameters(const std::vector<Parameter*>& params,
                      const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::string magic;
  std::getline(in, magic);
  const bool named = magic == kMagicV2;
  if (!named && magic != kMagicV1) {
    return Status::InvalidArgument("'" + path + "' is not an ATENA-NN file");
  }
  size_t count = 0;
  in >> count;
  if (count != params.size()) {
    return Status::FailedPrecondition(
        "parameter count mismatch: file has " + std::to_string(count) +
        ", network has " + std::to_string(params.size()));
  }
  // Stage into a buffer first so a truncated file cannot leave the network
  // half-loaded.
  std::vector<Matrix> staged;
  staged.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    std::string name;
    if (named) {
      in >> name;
      if (!in) return Status::InvalidArgument("'" + path + "' truncated");
      if (name != "_" && !params[k]->name.empty() &&
          name != params[k]->name) {
        return Status::FailedPrecondition(
            "parameter name mismatch at index " + std::to_string(k) +
            ": file '" + name + "', network '" + params[k]->name + "'");
      }
    }
    int rows = 0, cols = 0;
    in >> rows >> cols;
    if (!in || rows != params[k]->value.rows() ||
        cols != params[k]->value.cols()) {
      return Status::FailedPrecondition(
          "shape mismatch at parameter " + std::to_string(k) + ": file " +
          std::to_string(rows) + "x" + std::to_string(cols) + ", network " +
          params[k]->value.ShapeString());
    }
    Matrix m(rows, cols);
    for (double& v : m.data()) {
      in >> v;
      if (!in) {
        return Status::InvalidArgument("'" + path + "' truncated");
      }
    }
    staged.push_back(std::move(m));
  }
  for (size_t k = 0; k < count; ++k) {
    params[k]->value = std::move(staged[k]);
  }
  return Status::OK();
}

Status SaveParameters(const ParameterStore& store, const std::string& path) {
  return SaveParameters(store.All(), path);
}

Status LoadParameters(ParameterStore* store, const std::string& path) {
  return LoadParameters(store->All(), path);
}

}  // namespace atena
