#include "nn/serialization.h"

#include <iomanip>
#include <limits>
#include <sstream>

#include "common/file_io.h"

namespace atena {

namespace {
constexpr char kMagicPrefix[] = "ATENA-NN";
constexpr char kVersionV1[] = "v1";
constexpr char kVersionV2[] = "v2";
}  // namespace

std::string SerializeParameters(const std::vector<Parameter*>& params) {
  std::ostringstream out;
  out << kMagicPrefix << " " << kVersionV2 << "\n" << params.size() << "\n";
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const Parameter* p : params) {
    out << (p->name.empty() ? "_" : p->name) << " " << p->value.rows() << " "
        << p->value.cols() << "\n";
    const auto& data = p->value.data();
    for (size_t i = 0; i < data.size(); ++i) {
      out << data[i] << (i + 1 == data.size() ? "" : " ");
    }
    out << "\n";
  }
  return out.str();
}

Status SaveParameters(const std::vector<Parameter*>& params,
                      const std::string& path) {
  return AtomicWriteFile(path, SerializeParameters(params));
}

Status ParseParametersInto(const std::vector<Parameter*>& params,
                           std::istream& in, const std::string& source,
                           std::vector<Matrix>* staged) {
  std::string prefix, version;
  in >> prefix >> version;
  if (!in || prefix != kMagicPrefix ||
      (version != kVersionV1 && version != kVersionV2)) {
    return Status::InvalidArgument("'" + source +
                                   "' is not an ATENA-NN block");
  }
  const bool named = version == kVersionV2;
  size_t count = 0;
  in >> count;
  if (!in) return Status::InvalidArgument("'" + source + "' truncated");
  if (count != params.size()) {
    return Status::FailedPrecondition(
        "parameter count mismatch: file has " + std::to_string(count) +
        ", network has " + std::to_string(params.size()));
  }
  // Stage into a buffer first so a truncated block cannot leave the network
  // half-loaded.
  std::vector<Matrix> out;
  out.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    std::string name;
    if (named) {
      in >> name;
      if (!in) return Status::InvalidArgument("'" + source + "' truncated");
      if (name != "_" && !params[k]->name.empty() &&
          name != params[k]->name) {
        return Status::FailedPrecondition(
            "parameter name mismatch at index " + std::to_string(k) +
            ": file '" + name + "', network '" + params[k]->name + "'");
      }
    }
    int rows = 0, cols = 0;
    in >> rows >> cols;
    if (!in || rows != params[k]->value.rows() ||
        cols != params[k]->value.cols()) {
      return Status::FailedPrecondition(
          "shape mismatch at parameter " + std::to_string(k) + ": file " +
          std::to_string(rows) + "x" + std::to_string(cols) + ", network " +
          params[k]->value.ShapeString());
    }
    Matrix m(rows, cols);
    for (double& v : m.data()) {
      in >> v;
      if (!in) {
        return Status::InvalidArgument("'" + source + "' truncated");
      }
    }
    out.push_back(std::move(m));
  }
  *staged = std::move(out);
  return Status::OK();
}

Status LoadParameters(const std::vector<Parameter*>& params,
                      const std::string& path) {
  std::string text;
  ATENA_RETURN_IF_ERROR(ReadFileToString(path, &text));
  std::istringstream in(text);
  std::vector<Matrix> staged;
  ATENA_RETURN_IF_ERROR(ParseParametersInto(params, in, path, &staged));
  for (size_t k = 0; k < staged.size(); ++k) {
    params[k]->value = std::move(staged[k]);
  }
  return Status::OK();
}

Status SaveParameters(const ParameterStore& store, const std::string& path) {
  return SaveParameters(store.All(), path);
}

Status LoadParameters(ParameterStore* store, const std::string& path) {
  return LoadParameters(store->All(), path);
}

}  // namespace atena
