#include "nn/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace atena {

void ZeroGradients(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) p->grad.Fill(0.0);
}

GradClipResult ClipGradientsByNorm(const std::vector<Parameter*>& params,
                                   double max_norm) {
  GradClipResult result;
  double sq = 0.0;
  for (Parameter* p : params) {
    for (double g : p->grad.data()) {
      if (!std::isfinite(g)) ++result.nonfinite_count;
      sq += g * g;
    }
  }
  result.pre_clip_norm = std::sqrt(sq);
  if (!std::isfinite(result.pre_clip_norm)) {
    // A single inf/NaN gradient would turn the scaled update into NaNs
    // across every weight; dropping the update entirely is the only safe
    // recovery.
    for (Parameter* p : params) p->grad.Fill(0.0);
    return result;
  }
  if (result.pre_clip_norm > max_norm && result.pre_clip_norm > 0.0) {
    const double scale = max_norm / result.pre_clip_norm;
    for (Parameter* p : params) {
      for (double& g : p->grad.data()) g *= scale;
    }
    result.clipped = true;
  }
  return result;
}

void Sgd::Step(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    for (size_t i = 0; i < p->value.size(); ++i) {
      p->value.data()[i] -= learning_rate_ * p->grad.data()[i];
    }
  }
}

void Adam::SetState(int64_t step, std::vector<Matrix> m,
                    std::vector<Matrix> v) {
  ATENA_CHECK(step >= 0) << "Adam step count cannot be negative";
  ATENA_CHECK(m.size() == v.size())
      << "Adam moment vectors must be parallel: " << m.size() << " vs "
      << v.size();
  for (size_t k = 0; k < m.size(); ++k) {
    ATENA_CHECK(m[k].rows() == v[k].rows() && m[k].cols() == v[k].cols())
        << "Adam moment shape mismatch at index " << k << ": "
        << m[k].ShapeString() << " vs " << v[k].ShapeString();
  }
  step_ = step;
  m_ = std::move(m);
  v_ = std::move(v);
}

void Adam::Step(const std::vector<Parameter*>& params) {
  if (m_.empty()) {
    for (Parameter* p : params) {
      m_.emplace_back(p->value.rows(), p->value.cols());
      v_.emplace_back(p->value.rows(), p->value.cols());
    }
  }
  ATENA_CHECK(m_.size() == params.size())
      << "Adam called with a different parameter list";
  for (size_t k = 0; k < params.size(); ++k) {
    ATENA_CHECK(m_[k].rows() == params[k]->value.rows() &&
                m_[k].cols() == params[k]->value.cols())
        << "Adam moment shape " << m_[k].ShapeString()
        << " does not match parameter " << params[k]->value.ShapeString();
  }
  ++step_;
  const double b1 = options_.beta1, b2 = options_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(step_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(step_));
  for (size_t k = 0; k < params.size(); ++k) {
    Parameter* p = params[k];
    auto& m = m_[k].data();
    auto& v = v_[k].data();
    const auto& g = p->grad.data();
    auto& w = p->value.data();
    for (size_t i = 0; i < w.size(); ++i) {
      m[i] = b1 * m[i] + (1.0 - b1) * g[i];
      v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
      const double mhat = m[i] / bias1;
      const double vhat = v[i] / bias2;
      w[i] -= options_.learning_rate * mhat /
              (std::sqrt(vhat) + options_.epsilon);
    }
  }
}

}  // namespace atena
