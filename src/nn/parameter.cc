#include "nn/parameter.h"

#include "common/logging.h"

namespace atena {

Parameter* ParameterStore::Create(const std::string& name, int rows,
                                  int cols) {
  ATENA_CHECK(Find(name) == nullptr)
      << "duplicate parameter name '" << name << "'";
  auto param = std::make_unique<Parameter>();
  param->name = name;
  param->value = Matrix(rows, cols);
  param->grad = Matrix(rows, cols);
  params_.push_back(std::move(param));
  return params_.back().get();
}

Parameter* ParameterStore::Find(const std::string& name) const {
  for (const auto& p : params_) {
    if (p->name == name) return p.get();
  }
  return nullptr;
}

std::vector<Parameter*> ParameterStore::All() const {
  std::vector<Parameter*> out;
  out.reserve(params_.size());
  for (const auto& p : params_) out.push_back(p.get());
  return out;
}

int64_t ParameterStore::NumScalars() const {
  int64_t total = 0;
  for (const auto& p : params_) {
    total += static_cast<int64_t>(p->value.size());
  }
  return total;
}

}  // namespace atena
