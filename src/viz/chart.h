#ifndef ATENA_VIZ_CHART_H_
#define ATENA_VIZ_CHART_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "eda/display.h"

namespace atena {

/// Chart families the recommender can emit. The paper's environment
/// supports filter/group/aggregate and "can be extended to support, e.g.,
/// visualizations" (§3); this module is that extension: every display gets
/// a deterministic chart recommendation rendered into the HTML notebook.
enum class ChartKind {
  kNone,       // nothing worth plotting (e.g. a single group)
  kBarChart,   // categorical key -> aggregate value
  kLineChart,  // ordered numeric key -> aggregate value
  kHistogram,  // distribution of one numeric column of a raw display
};

const char* ChartKindName(ChartKind kind);

/// One point of a chart: a label (category or bin) and its value.
struct ChartPoint {
  std::string label;
  double value = 0.0;
};

/// A renderable chart specification.
struct ChartSpec {
  ChartKind kind = ChartKind::kNone;
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<ChartPoint> points;
  /// True when `points` was truncated to the top values by magnitude.
  bool truncated = false;
};

struct ChartOptions {
  /// Maximum categories shown in a bar chart (largest |value| first when
  /// exceeded; axis order otherwise).
  int max_bars = 16;
  /// Histogram bin count for raw numeric columns.
  int histogram_bins = 12;
  /// Minimum groups/distinct values for a chart to be worth showing.
  int min_points = 2;
};

/// Recommends a chart for one display:
///  * grouped by a single numeric key         -> line chart (key ordered),
///  * grouped (any keys, last one categorical)-> bar chart of the aggregate
///    per (composite) group key,
///  * ungrouped                               -> histogram of the most
///    recently filtered numeric column, falling back to the first numeric
///    non-key-like column,
///  * single-group or empty displays          -> kNone.
///
/// Deterministic: the same display always yields the same chart.
Result<ChartSpec> RecommendChart(const Table& source, const Display& display,
                                 const ChartOptions& options = {});

}  // namespace atena

#endif  // ATENA_VIZ_CHART_H_
