#include "viz/svg.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/string_utils.h"

namespace atena {

namespace {

std::string XmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// A "nice" rounded step for axis ticks covering `span` with ~`ticks`
/// divisions (1/2/5 × 10^k).
double NiceStep(double span, int ticks) {
  if (span <= 0 || ticks <= 0) return 1.0;
  double raw = span / ticks;
  double magnitude = std::pow(10.0, std::floor(std::log10(raw)));
  double residual = raw / magnitude;
  double nice = 10.0;
  if (residual <= 1.0) {
    nice = 1.0;
  } else if (residual <= 2.0) {
    nice = 2.0;
  } else if (residual <= 5.0) {
    nice = 5.0;
  }
  return nice * magnitude;
}

}  // namespace

std::string RenderChartSvg(const ChartSpec& spec, const SvgOptions& options) {
  if (spec.kind == ChartKind::kNone || spec.points.empty()) return "";

  const double plot_w = static_cast<double>(
      options.width - options.margin_left - options.margin_right);
  const double plot_h = static_cast<double>(
      options.height - options.margin_top - options.margin_bottom);
  const double x0 = options.margin_left;
  const double y0 = options.margin_top;

  // Value range, always including 0 so bars have a meaningful baseline.
  double lo = 0.0, hi = 0.0;
  for (const auto& p : spec.points) {
    lo = std::min(lo, p.value);
    hi = std::max(hi, p.value);
  }
  if (hi == lo) hi = lo + 1.0;
  const double span = hi - lo;
  auto value_to_y = [&](double v) {
    return y0 + plot_h * (1.0 - (v - lo) / span);
  };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width
      << "\" height=\"" << options.height << "\" viewBox=\"0 0 "
      << options.width << " " << options.height << "\">\n";
  svg << "<style>text{font-family:sans-serif;font-size:10px;fill:#333}"
      << ".title{font-size:12px;font-weight:bold}"
      << ".axis{stroke:#888;stroke-width:1}"
      << ".grid{stroke:#ddd;stroke-width:0.5}"
      << ".bar{fill:#4878a8}.line{fill:none;stroke:#4878a8;stroke-width:2}"
      << ".dot{fill:#4878a8}</style>\n";

  // Title and axis labels.
  svg << "<text class=\"title\" x=\"" << options.width / 2 << "\" y=\"16\" "
      << "text-anchor=\"middle\">" << XmlEscape(spec.title)
      << (spec.truncated ? " (top values)" : "") << "</text>\n";
  svg << "<text x=\"" << x0 + plot_w / 2 << "\" y=\"" << options.height - 4
      << "\" text-anchor=\"middle\">" << XmlEscape(spec.x_label)
      << "</text>\n";
  svg << "<text x=\"12\" y=\"" << y0 + plot_h / 2
      << "\" text-anchor=\"middle\" transform=\"rotate(-90 12 "
      << y0 + plot_h / 2 << ")\">" << XmlEscape(spec.y_label) << "</text>\n";

  // Value-axis grid lines and tick labels.
  const double step = NiceStep(span, options.value_ticks);
  for (double tick = std::ceil(lo / step) * step; tick <= hi + 1e-9;
       tick += step) {
    const double y = value_to_y(tick);
    svg << "<line class=\"grid\" x1=\"" << x0 << "\" y1=\"" << y << "\" x2=\""
        << x0 + plot_w << "\" y2=\"" << y << "\"/>\n";
    svg << "<text x=\"" << x0 - 6 << "\" y=\"" << y + 3
        << "\" text-anchor=\"end\">" << FormatDouble(tick, 2) << "</text>\n";
  }

  // Axes.
  svg << "<line class=\"axis\" x1=\"" << x0 << "\" y1=\"" << y0 << "\" x2=\""
      << x0 << "\" y2=\"" << y0 + plot_h << "\"/>\n";
  svg << "<line class=\"axis\" x1=\"" << x0 << "\" y1=\"" << value_to_y(0.0)
      << "\" x2=\"" << x0 + plot_w << "\" y2=\"" << value_to_y(0.0)
      << "\"/>\n";

  const size_t n = spec.points.size();
  const double slot = plot_w / static_cast<double>(n);
  // Category labels: skip some when crowded.
  const size_t label_stride =
      std::max<size_t>(1, n / std::max<size_t>(1, static_cast<size_t>(
                                                      plot_w / 48.0)));

  if (spec.kind == ChartKind::kLineChart) {
    svg << "<polyline class=\"line\" points=\"";
    for (size_t i = 0; i < n; ++i) {
      const double x = x0 + slot * (static_cast<double>(i) + 0.5);
      svg << x << "," << value_to_y(spec.points[i].value) << " ";
    }
    svg << "\"/>\n";
    for (size_t i = 0; i < n; ++i) {
      const double x = x0 + slot * (static_cast<double>(i) + 0.5);
      svg << "<circle class=\"dot\" cx=\"" << x << "\" cy=\""
          << value_to_y(spec.points[i].value) << "\" r=\"2.5\"/>\n";
    }
  } else {
    const double bar_w = std::max(1.0, slot * 0.72);
    for (size_t i = 0; i < n; ++i) {
      const double v = spec.points[i].value;
      const double x =
          x0 + slot * (static_cast<double>(i) + 0.5) - bar_w / 2.0;
      const double y_top = value_to_y(std::max(v, 0.0));
      const double y_bottom = value_to_y(std::min(v, 0.0));
      svg << "<rect class=\"bar\" x=\"" << x << "\" y=\"" << y_top
          << "\" width=\"" << bar_w << "\" height=\""
          << std::max(0.5, y_bottom - y_top) << "\"/>\n";
    }
  }

  for (size_t i = 0; i < n; i += label_stride) {
    const double x = x0 + slot * (static_cast<double>(i) + 0.5);
    svg << "<text x=\"" << x << "\" y=\"" << y0 + plot_h + 12
        << "\" text-anchor=\"end\" transform=\"rotate(-30 " << x << " "
        << y0 + plot_h + 12 << ")\">"
        << XmlEscape(spec.points[i].label.substr(0, 18)) << "</text>\n";
  }

  svg << "</svg>\n";
  return svg.str();
}

}  // namespace atena
