#ifndef ATENA_VIZ_SVG_H_
#define ATENA_VIZ_SVG_H_

#include <string>

#include "viz/chart.h"

namespace atena {

struct SvgOptions {
  int width = 560;
  int height = 260;
  int margin_left = 64;
  int margin_bottom = 56;
  int margin_top = 28;
  int margin_right = 16;
  /// Axis tick count on the value axis.
  int value_ticks = 4;
};

/// Renders a chart specification as a self-contained SVG fragment (no
/// external CSS/JS), suitable for embedding into the HTML notebook. A
/// kNone spec renders to an empty string.
std::string RenderChartSvg(const ChartSpec& spec, const SvgOptions& options = {});

}  // namespace atena

#endif  // ATENA_VIZ_SVG_H_
