#include "viz/chart.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_utils.h"
#include "dataframe/stats.h"

namespace atena {

const char* ChartKindName(ChartKind kind) {
  switch (kind) {
    case ChartKind::kNone:
      return "none";
    case ChartKind::kBarChart:
      return "bar";
    case ChartKind::kLineChart:
      return "line";
    case ChartKind::kHistogram:
      return "histogram";
  }
  return "?";
}

namespace {

std::string CompositeKeyLabel(const Group& group) {
  std::vector<std::string> parts;
  parts.reserve(group.keys.size());
  for (const auto& key : group.keys) parts.push_back(key.ToString());
  return JoinStrings(parts, " / ");
}

Result<ChartSpec> GroupedChart(const Table& source, const Display& display,
                               const ChartOptions& options) {
  const GroupedResult& grouped = *display.grouped;
  ChartSpec spec;
  if (static_cast<int>(grouped.groups.size()) < options.min_points) {
    spec.kind = ChartKind::kNone;
    return spec;
  }

  // Axis semantics.
  spec.y_label = grouped.agg_name;
  spec.x_label = JoinStrings(grouped.key_names, " / ");
  spec.title = grouped.agg_name + " by " + spec.x_label;

  // Points in key order (GroupAggregate already sorts by key).
  for (const auto& group : grouped.groups) {
    if (!group.agg_valid) continue;
    spec.points.push_back(ChartPoint{CompositeKeyLabel(group),
                                     group.aggregate});
  }
  if (static_cast<int>(spec.points.size()) < options.min_points) {
    spec.kind = ChartKind::kNone;
    spec.points.clear();
    return spec;
  }

  // Single numeric key -> the x axis is ordered: draw a line.
  const bool numeric_key =
      grouped.spec.group_columns.size() == 1 &&
      source.column(grouped.spec.group_columns[0])->type() !=
          DataType::kString;
  spec.kind = numeric_key ? ChartKind::kLineChart : ChartKind::kBarChart;

  if (spec.kind == ChartKind::kBarChart &&
      static_cast<int>(spec.points.size()) > options.max_bars) {
    std::stable_sort(spec.points.begin(), spec.points.end(),
                     [](const ChartPoint& a, const ChartPoint& b) {
                       return std::fabs(a.value) > std::fabs(b.value);
                     });
    spec.points.resize(static_cast<size_t>(options.max_bars));
    spec.truncated = true;
  }
  return spec;
}

/// Picks the column to histogram for a raw (ungrouped) display: the most
/// recently filtered numeric column if any, else the first numeric column
/// that is not key-like (≤ 50% distinct values in the selection).
int PickHistogramColumn(const Table& source, const Display& display) {
  for (auto it = display.filters.rbegin(); it != display.filters.rend();
       ++it) {
    if (it->column >= 0 &&
        source.column(it->column)->type() != DataType::kString) {
      return it->column;
    }
  }
  for (int c = 0; c < source.num_columns(); ++c) {
    const Column& col = *source.column(c);
    if (col.type() == DataType::kString) continue;
    ColumnStats stats = ComputeColumnStats(col, display.rows);
    if (stats.count > 0 &&
        static_cast<double>(stats.distinct) <=
            0.5 * static_cast<double>(stats.count)) {
      return c;
    }
  }
  return -1;
}

Result<ChartSpec> HistogramChart(const Table& source, const Display& display,
                                 const ChartOptions& options) {
  ChartSpec spec;
  int column = PickHistogramColumn(source, display);
  if (column < 0 || display.rows.size() < 2) {
    spec.kind = ChartKind::kNone;
    return spec;
  }
  const Column& col = *source.column(column);

  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  int64_t n = 0;
  for (int32_t r : display.rows) {
    if (col.IsNull(r)) continue;
    double v = col.AsDoubleOrNan(r);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    ++n;
  }
  if (n < options.min_points || !(hi > lo)) {
    spec.kind = ChartKind::kNone;
    return spec;
  }

  const int bins = std::max(2, options.histogram_bins);
  std::vector<double> counts(static_cast<size_t>(bins), 0.0);
  const double width = (hi - lo) / bins;
  for (int32_t r : display.rows) {
    if (col.IsNull(r)) continue;
    double v = col.AsDoubleOrNan(r);
    int b = static_cast<int>((v - lo) / width);
    if (b >= bins) b = bins - 1;  // hi lands in the last bin
    if (b < 0) b = 0;
    counts[static_cast<size_t>(b)] += 1.0;
  }

  spec.kind = ChartKind::kHistogram;
  spec.title = "Distribution of " + col.name();
  spec.x_label = col.name();
  spec.y_label = "count";
  for (int b = 0; b < bins; ++b) {
    const double from = lo + b * width;
    spec.points.push_back(ChartPoint{
        "[" + FormatDouble(from, 1) + ", " + FormatDouble(from + width, 1) +
            ")",
        counts[static_cast<size_t>(b)]});
  }
  return spec;
}

}  // namespace

Result<ChartSpec> RecommendChart(const Table& source, const Display& display,
                                 const ChartOptions& options) {
  if (display.grouped) return GroupedChart(source, display, options);
  return HistogramChart(source, display, options);
}

}  // namespace atena
