#include "rl/trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace atena {

PpoTrainer::PpoTrainer(EdaEnvironment* env, Policy* policy,
                       TrainerOptions options)
    : env_(env),
      policy_(policy),
      options_(options),
      rng_(options.seed),
      optimizer_(Adam::Options{.learning_rate = options.learning_rate,
                               .beta1 = 0.9,
                               .beta2 = 0.999,
                               .epsilon = 1e-8}) {}

TrainingResult PpoTrainer::Train() {
  result_ = TrainingResult{};
  recent_episode_rewards_.clear();

  std::vector<double> observation = env_->Reset();
  double episode_reward = 0.0;
  std::vector<EdaOperation> episode_ops;

  int steps_done = 0;
  while (steps_done < options_.total_steps) {
    std::vector<Transition> rollout;
    rollout.reserve(static_cast<size_t>(options_.rollout_length));
    bool last_done = false;

    for (int i = 0; i < options_.rollout_length &&
                    steps_done < options_.total_steps;
         ++i, ++steps_done) {
      PolicyStep step = policy_->Act(observation, &rng_);
      StepOutcome outcome = ApplyAction(env_, step.action);

      Transition transition;
      transition.observation = observation;
      transition.action = step.action;
      transition.log_prob = step.log_prob;
      transition.value = step.value;
      transition.reward = outcome.reward;
      transition.episode_end = outcome.done;
      rollout.push_back(std::move(transition));

      episode_reward += outcome.reward;
      episode_ops.push_back(outcome.op);
      observation = std::move(outcome.observation);
      last_done = outcome.done;

      if (outcome.done) {
        ++result_.episodes;
        recent_episode_rewards_.push_back(episode_reward);
        if (recent_episode_rewards_.size() > 50) {
          recent_episode_rewards_.erase(recent_episode_rewards_.begin());
        }
        if (episode_reward > result_.best_episode_reward ||
            result_.best_episode_ops.empty()) {
          result_.best_episode_reward = episode_reward;
          result_.best_episode_ops = episode_ops;
        }
        episode_reward = 0.0;
        episode_ops.clear();
        observation = env_->Reset();
      }
    }

    // Bootstrap value of the observation after the rollout (0 when the
    // episode just ended — episodic MDP).
    double last_value = 0.0;
    if (!last_done) {
      PolicyStep probe = policy_->ActGreedy(observation);
      last_value = probe.value;
    }
    Update(rollout, last_value, last_done);

    CurvePoint point;
    point.step = steps_done;
    point.mean_episode_reward =
        recent_episode_rewards_.empty()
            ? 0.0
            : std::accumulate(recent_episode_rewards_.begin(),
                              recent_episode_rewards_.end(), 0.0) /
                  static_cast<double>(recent_episode_rewards_.size());
    result_.curve.push_back(point);
    if (progress_) progress_(point);
  }

  result_.final_mean_reward =
      result_.curve.empty() ? 0.0 : result_.curve.back().mean_episode_reward;

  // Final evaluation: the published notebook should reflect the trained
  // policy, so the best of `final_eval_episodes` post-training episodes
  // competes with the best episode seen during training.
  for (int episode = 0; episode < options_.final_eval_episodes; ++episode) {
    std::vector<double> eval_obs = env_->Reset();
    double eval_reward = 0.0;
    std::vector<EdaOperation> eval_ops;
    while (!env_->done()) {
      PolicyStep step = policy_->Act(eval_obs, &rng_);
      StepOutcome outcome = ApplyAction(env_, step.action);
      eval_reward += outcome.reward;
      eval_ops.push_back(outcome.op);
      eval_obs = std::move(outcome.observation);
    }
    if (eval_reward > result_.best_episode_reward) {
      result_.best_episode_reward = eval_reward;
      result_.best_episode_ops = std::move(eval_ops);
    }
  }
  return result_;
}

void PpoTrainer::Update(const std::vector<Transition>& rollout,
                        double last_value, bool last_done) {
  const size_t n = rollout.size();
  if (n == 0) return;

  // GAE(λ) advantages and discounted returns.
  std::vector<double> advantages(n, 0.0);
  std::vector<double> returns(n, 0.0);
  double gae = 0.0;
  double next_value = last_done ? 0.0 : last_value;
  bool next_is_terminal = last_done;
  for (size_t i = n; i-- > 0;) {
    const Transition& t = rollout[i];
    const double bootstrap = next_is_terminal ? 0.0 : next_value;
    const double delta =
        t.reward + options_.gamma * bootstrap - t.value;
    gae = delta +
          (next_is_terminal ? 0.0 : options_.gamma * options_.gae_lambda * gae);
    advantages[i] = gae;
    returns[i] = advantages[i] + t.value;
    next_value = t.value;
    next_is_terminal = t.episode_end;
  }

  // Normalize advantages (standard PPO practice; keeps gradient scale
  // stable across the compound reward's calibration regimes).
  {
    double mean = std::accumulate(advantages.begin(), advantages.end(), 0.0) /
                  static_cast<double>(n);
    double var = 0.0;
    for (double a : advantages) var += (a - mean) * (a - mean);
    var /= static_cast<double>(n);
    const double stddev = std::sqrt(var) + 1e-8;
    for (double& a : advantages) a = (a - mean) / stddev;
  }

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  const int obs_dim = static_cast<int>(rollout[0].observation.size());
  for (int epoch = 0; epoch < options_.epochs_per_update; ++epoch) {
    rng_.Shuffle(order);
    for (size_t start = 0; start < n;
         start += static_cast<size_t>(options_.minibatch_size)) {
      const size_t end =
          std::min(n, start + static_cast<size_t>(options_.minibatch_size));
      const int batch = static_cast<int>(end - start);

      Matrix observations(batch, obs_dim);
      std::vector<ActionRecord> actions(static_cast<size_t>(batch));
      for (int b = 0; b < batch; ++b) {
        const Transition& t = rollout[order[start + b]];
        std::copy(t.observation.begin(), t.observation.end(),
                  observations.RowPtr(b));
        actions[static_cast<size_t>(b)] = t.action;
      }

      BatchEvaluation eval = policy_->ForwardBatch(observations, actions);

      std::vector<SampleGrad> grads(static_cast<size_t>(batch));
      const double inv_batch = 1.0 / static_cast<double>(batch);
      for (int b = 0; b < batch; ++b) {
        const size_t idx = order[start + b];
        const Transition& t = rollout[idx];
        const double advantage = advantages[idx];
        const double ratio = std::exp(eval.log_probs[b] - t.log_prob);
        const double clipped =
            std::clamp(ratio, 1.0 - options_.clip_epsilon,
                       1.0 + options_.clip_epsilon);
        // Surrogate L = min(r·A, clip(r)·A); we minimize -L.
        // d(-L)/dlogp = -r·A when the unclipped branch is active, else 0.
        const bool unclipped_active =
            ratio * advantage <= clipped * advantage + 1e-12;
        SampleGrad& g = grads[static_cast<size_t>(b)];
        g.d_log_prob =
            unclipped_active ? -ratio * advantage * inv_batch : 0.0;
        g.d_entropy = -options_.entropy_coef * inv_batch;
        g.d_value = options_.value_coef * 2.0 *
                    (eval.values[b] - returns[idx]) * inv_batch;
      }

      ZeroGradients(policy_->Parameters());
      policy_->BackwardBatch(grads);
      ClipGradientsByNorm(policy_->Parameters(), options_.max_grad_norm);
      optimizer_.Step(policy_->Parameters());
    }
  }
}

}  // namespace atena
