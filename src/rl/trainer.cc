#include "rl/trainer.h"

#include <csignal>

#include "rl/parallel_trainer.h"

namespace atena {

namespace {
/// The one mutation RequestTrainingStop performs, keeping it legal to call
/// from an asynchronous signal handler.
volatile std::sig_atomic_t g_training_stop_requested = 0;
}  // namespace

void RequestTrainingStop() { g_training_stop_requested = 1; }
bool TrainingStopRequested() { return g_training_stop_requested != 0; }
void ClearTrainingStopRequest() { g_training_stop_requested = 0; }

PpoTrainer::PpoTrainer(EdaEnvironment* env, Policy* policy,
                       TrainerOptions options)
    : env_(env), policy_(policy), options_(options) {}

TrainingResult PpoTrainer::Train() {
  // The single-env trainer is the 1-actor special case of the parallel
  // trainer: same rollout buffer, GAE, and PPO epochs (rl/rollout.h), same
  // rng stream (the parallel trainer keeps the plain seed for one actor),
  // so the output is bit-identical to the historical implementation.
  ParallelPpoTrainer inner({env_}, policy_, options_);
  if (progress_) inner.SetProgressCallback(progress_);
  return inner.Train();
}

}  // namespace atena
