#include "rl/trainer.h"

#include "rl/parallel_trainer.h"

namespace atena {

PpoTrainer::PpoTrainer(EdaEnvironment* env, Policy* policy,
                       TrainerOptions options)
    : env_(env), policy_(policy), options_(options) {}

TrainingResult PpoTrainer::Train() {
  // The single-env trainer is the 1-actor special case of the parallel
  // trainer: same rollout buffer, GAE, and PPO epochs (rl/rollout.h), same
  // rng stream (the parallel trainer keeps the plain seed for one actor),
  // so the output is bit-identical to the historical implementation.
  ParallelPpoTrainer inner({env_}, policy_, options_);
  if (progress_) inner.SetProgressCallback(progress_);
  return inner.Train();
}

}  // namespace atena
