#include "rl/parallel_trainer.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace atena {

namespace {

PpoUpdater::Options UpdaterOptions(const TrainerOptions& options) {
  PpoUpdater::Options out;
  out.minibatch_size = options.minibatch_size;
  out.epochs_per_update = options.epochs_per_update;
  out.clip_epsilon = options.clip_epsilon;
  out.entropy_coef = options.entropy_coef;
  out.value_coef = options.value_coef;
  out.learning_rate = options.learning_rate;
  out.max_grad_norm = options.max_grad_norm;
  return out;
}

}  // namespace

ParallelPpoTrainer::ParallelPpoTrainer(std::vector<EdaEnvironment*> envs,
                                       Policy* policy,
                                       TrainerOptions options)
    : envs_(std::move(envs)),
      policy_(policy),
      options_(options),
      // Multi-actor runs decorrelate their exploration stream from the
      // single-env trainer's; the 1-actor instance keeps the plain seed
      // because it IS the single-env trainer (PpoTrainer delegates here and
      // must reproduce its historical output bit for bit).
      rng_(envs_.size() > 1 ? options.seed ^ 0x5151 : options.seed),
      buffer_(envs_.size()),
      updater_(policy, UpdaterOptions(options)) {
  ATENA_CHECK(!envs_.empty()) << "parallel trainer needs at least one env";
  // All actors explore the same dataset, so they share one display cache:
  // operation prefixes recomputed by one actor become hits for the others.
  // Safe because cache keys are canonical operation-path signatures and
  // values are exact kernel outputs (hit ≡ recompute, bit-identical).
  if (const auto& shared_cache = envs_[0]->display_cache()) {
    for (EdaEnvironment* env : envs_) env->SetDisplayCache(shared_cache);
  }
}

TrainingResult ParallelPpoTrainer::Train() {
  result_ = TrainingResult{};
  recent_episode_rewards_.clear();

  const size_t n_envs = envs_.size();
  std::vector<ActorState> actors(n_envs);
  for (size_t e = 0; e < n_envs; ++e) {
    actors[e].observation = envs_[e]->Reset();
  }

  // Per-update rollout length is split evenly across the actors so the
  // update cadence matches the single-env trainer.
  const int per_actor =
      std::max(1, options_.rollout_length / static_cast<int>(n_envs));
  const int obs_dim = envs_[0]->observation_dim();

  Matrix obs_batch;  // reused across ticks; steady state allocates nothing
  int steps_done = 0;
  while (steps_done < options_.total_steps) {
    buffer_.Clear();
    for (int i = 0; i < per_actor && steps_done < options_.total_steps; ++i) {
      // The last tick of a budget may cover only the first `m` actors —
      // exactly the actors the historical per-step loop would still visit.
      const int m = std::min(static_cast<int>(n_envs),
                             options_.total_steps - steps_done);
      obs_batch.Resize(m, obs_dim);
      for (int e = 0; e < m; ++e) {
        std::copy(actors[static_cast<size_t>(e)].observation.begin(),
                  actors[static_cast<size_t>(e)].observation.end(),
                  obs_batch.RowPtr(e));
      }
      // One batched forward for the whole tick; rows consume rng_ in actor
      // order, bit-identical to per-actor Act calls.
      std::vector<PolicyStep> steps = policy_->ActBatch(obs_batch, &rng_);

      for (int e = 0; e < m; ++e, ++steps_done) {
        ActorState& actor = actors[static_cast<size_t>(e)];
        PolicyStep& step = steps[static_cast<size_t>(e)];
        StepOutcome outcome = ApplyAction(envs_[static_cast<size_t>(e)],
                                          step.action);

        Transition transition;
        transition.observation = actor.observation;
        transition.action = step.action;
        transition.log_prob = step.log_prob;
        transition.value = step.value;
        transition.reward = outcome.reward;
        transition.episode_end = outcome.done;
        buffer_.Add(static_cast<size_t>(e), std::move(transition));

        actor.episode_reward += outcome.reward;
        actor.episode_ops.push_back(outcome.op);
        actor.observation = std::move(outcome.observation);

        if (outcome.done) {
          ++result_.episodes;
          recent_episode_rewards_.push_back(actor.episode_reward);
          if (recent_episode_rewards_.size() > 50) {
            recent_episode_rewards_.erase(recent_episode_rewards_.begin());
          }
          if (actor.episode_reward > result_.best_episode_reward ||
              result_.best_episode_ops.empty()) {
            result_.best_episode_reward = actor.episode_reward;
            result_.best_episode_ops = actor.episode_ops;
          }
          actor.episode_reward = 0.0;
          actor.episode_ops.clear();
          actor.observation = envs_[static_cast<size_t>(e)]->Reset();
        }
      }
    }

    // Bootstrap tail values for every stream that ended mid-episode, again
    // with a single batched (greedy, rng-free) forward.
    std::vector<double> bootstrap(n_envs, 0.0);
    std::vector<size_t> pending;
    for (size_t e = 0; e < n_envs; ++e) {
      if (buffer_.StreamNeedsBootstrap(e)) pending.push_back(e);
    }
    if (!pending.empty()) {
      Matrix probe(static_cast<int>(pending.size()), obs_dim);
      for (size_t k = 0; k < pending.size(); ++k) {
        std::copy(actors[pending[k]].observation.begin(),
                  actors[pending[k]].observation.end(),
                  probe.RowPtr(static_cast<int>(k)));
      }
      std::vector<PolicyStep> probes = policy_->ActBatch(probe, nullptr);
      for (size_t k = 0; k < pending.size(); ++k) {
        bootstrap[pending[k]] = probes[k].value;
      }
    }
    updater_.Update(
        buffer_.ComputeGae(bootstrap, options_.gamma, options_.gae_lambda),
        &rng_);

    CurvePoint point;
    point.step = steps_done;
    point.mean_episode_reward =
        recent_episode_rewards_.empty()
            ? 0.0
            : std::accumulate(recent_episode_rewards_.begin(),
                              recent_episode_rewards_.end(), 0.0) /
                  static_cast<double>(recent_episode_rewards_.size());
    result_.curve.push_back(point);
    if (progress_) progress_(point);
  }

  result_.final_mean_reward =
      result_.curve.empty() ? 0.0 : result_.curve.back().mean_episode_reward;

  // Final evaluation on the first actor's environment: the published
  // notebook should reflect the trained policy, so the best of
  // `final_eval_episodes` post-training episodes competes with the best
  // episode seen during training.
  for (int episode = 0; episode < options_.final_eval_episodes; ++episode) {
    std::vector<double> obs = envs_[0]->Reset();
    double reward = 0.0;
    std::vector<EdaOperation> ops;
    while (!envs_[0]->done()) {
      PolicyStep step = policy_->Act(obs, &rng_);
      StepOutcome outcome = ApplyAction(envs_[0], step.action);
      reward += outcome.reward;
      ops.push_back(outcome.op);
      obs = std::move(outcome.observation);
    }
    if (reward > result_.best_episode_reward) {
      result_.best_episode_reward = reward;
      result_.best_episode_ops = std::move(ops);
    }
  }
  return result_;
}

}  // namespace atena
