#include "rl/parallel_trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace atena {

ParallelPpoTrainer::ParallelPpoTrainer(std::vector<EdaEnvironment*> envs,
                                       Policy* policy,
                                       TrainerOptions options)
    : envs_(std::move(envs)),
      policy_(policy),
      options_(options),
      rng_(options.seed ^ 0x5151),
      optimizer_(Adam::Options{.learning_rate = options.learning_rate,
                               .beta1 = 0.9,
                               .beta2 = 0.999,
                               .epsilon = 1e-8}) {
  ATENA_CHECK(!envs_.empty()) << "parallel trainer needs at least one env";
  // All actors explore the same dataset, so they share one display cache:
  // operation prefixes recomputed by one actor become hits for the others.
  // Safe because cache keys are canonical operation-path signatures and
  // values are exact kernel outputs (hit ≡ recompute, bit-identical).
  if (const auto& shared_cache = envs_[0]->display_cache()) {
    for (EdaEnvironment* env : envs_) env->SetDisplayCache(shared_cache);
  }
}

TrainingResult ParallelPpoTrainer::Train() {
  result_ = TrainingResult{};
  recent_episode_rewards_.clear();

  const size_t n_envs = envs_.size();
  std::vector<ActorState> actors(n_envs);
  for (size_t e = 0; e < n_envs; ++e) {
    actors[e].observation = envs_[e]->Reset();
  }

  // Per-update rollout length is split evenly across the actors so the
  // update cadence matches the single-env trainer.
  const int per_actor =
      std::max(1, options_.rollout_length / static_cast<int>(n_envs));

  int steps_done = 0;
  while (steps_done < options_.total_steps) {
    std::vector<std::vector<Transition>> streams(n_envs);
    for (int i = 0; i < per_actor && steps_done < options_.total_steps; ++i) {
      for (size_t e = 0; e < n_envs && steps_done < options_.total_steps;
           ++e, ++steps_done) {
        ActorState& actor = actors[e];
        PolicyStep step = policy_->Act(actor.observation, &rng_);
        StepOutcome outcome = ApplyAction(envs_[e], step.action);

        Transition transition;
        transition.observation = actor.observation;
        transition.action = step.action;
        transition.log_prob = step.log_prob;
        transition.value = step.value;
        transition.reward = outcome.reward;
        transition.episode_end = outcome.done;
        streams[e].push_back(std::move(transition));

        actor.episode_reward += outcome.reward;
        actor.episode_ops.push_back(outcome.op);
        actor.observation = std::move(outcome.observation);

        if (outcome.done) {
          ++result_.episodes;
          recent_episode_rewards_.push_back(actor.episode_reward);
          if (recent_episode_rewards_.size() > 50) {
            recent_episode_rewards_.erase(recent_episode_rewards_.begin());
          }
          if (actor.episode_reward > result_.best_episode_reward ||
              result_.best_episode_ops.empty()) {
            result_.best_episode_reward = actor.episode_reward;
            result_.best_episode_ops = actor.episode_ops;
          }
          actor.episode_reward = 0.0;
          actor.episode_ops.clear();
          actor.observation = envs_[e]->Reset();
        }
      }
    }

    Update(streams, actors);

    CurvePoint point;
    point.step = steps_done;
    point.mean_episode_reward =
        recent_episode_rewards_.empty()
            ? 0.0
            : std::accumulate(recent_episode_rewards_.begin(),
                              recent_episode_rewards_.end(), 0.0) /
                  static_cast<double>(recent_episode_rewards_.size());
    result_.curve.push_back(point);
    if (progress_) progress_(point);
  }

  result_.final_mean_reward =
      result_.curve.empty() ? 0.0 : result_.curve.back().mean_episode_reward;

  // Final evaluation on the first actor's environment (see PpoTrainer).
  for (int episode = 0; episode < options_.final_eval_episodes; ++episode) {
    std::vector<double> obs = envs_[0]->Reset();
    double reward = 0.0;
    std::vector<EdaOperation> ops;
    while (!envs_[0]->done()) {
      PolicyStep step = policy_->Act(obs, &rng_);
      StepOutcome outcome = ApplyAction(envs_[0], step.action);
      reward += outcome.reward;
      ops.push_back(outcome.op);
      obs = std::move(outcome.observation);
    }
    if (reward > result_.best_episode_reward) {
      result_.best_episode_reward = reward;
      result_.best_episode_ops = std::move(ops);
    }
  }
  return result_;
}

void ParallelPpoTrainer::Update(
    const std::vector<std::vector<Transition>>& streams,
    const std::vector<ActorState>& actors) {
  // GAE per actor stream (each stream is a contiguous slice of that
  // actor's trajectory), then one merged PPO update.
  struct Sample {
    const Transition* transition;
    double advantage;
    double target;
  };
  std::vector<Sample> samples;

  for (size_t e = 0; e < streams.size(); ++e) {
    const auto& stream = streams[e];
    if (stream.empty()) continue;

    double last_value = 0.0;
    const bool last_done = stream.back().episode_end;
    if (!last_done) {
      // Bootstrap from the critic at the actor's current observation.
      PolicyStep probe = policy_->ActGreedy(actors[e].observation);
      last_value = probe.value;
    }

    double gae = 0.0;
    double next_value = last_done ? 0.0 : last_value;
    bool next_terminal = last_done;
    std::vector<double> advantages(stream.size());
    for (size_t i = stream.size(); i-- > 0;) {
      const Transition& t = stream[i];
      const double bootstrap = next_terminal ? 0.0 : next_value;
      const double delta = t.reward + options_.gamma * bootstrap - t.value;
      gae = delta + (next_terminal
                         ? 0.0
                         : options_.gamma * options_.gae_lambda * gae);
      advantages[i] = gae;
      next_value = t.value;
      next_terminal = t.episode_end;
    }
    for (size_t i = 0; i < stream.size(); ++i) {
      samples.push_back(
          Sample{&stream[i], advantages[i], advantages[i] + stream[i].value});
    }
  }
  if (samples.empty()) return;

  // Normalize advantages across the merged batch.
  double mean = 0.0;
  for (const auto& s : samples) mean += s.advantage;
  mean /= static_cast<double>(samples.size());
  double var = 0.0;
  for (const auto& s : samples) {
    var += (s.advantage - mean) * (s.advantage - mean);
  }
  const double stddev =
      std::sqrt(var / static_cast<double>(samples.size())) + 1e-8;
  for (auto& s : samples) s.advantage = (s.advantage - mean) / stddev;

  std::vector<size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  const int obs_dim =
      static_cast<int>(samples[0].transition->observation.size());

  for (int epoch = 0; epoch < options_.epochs_per_update; ++epoch) {
    rng_.Shuffle(order);
    for (size_t start = 0; start < samples.size();
         start += static_cast<size_t>(options_.minibatch_size)) {
      const size_t end = std::min(
          samples.size(), start + static_cast<size_t>(options_.minibatch_size));
      const int batch = static_cast<int>(end - start);

      Matrix observations(batch, obs_dim);
      std::vector<ActionRecord> actions(static_cast<size_t>(batch));
      for (int b = 0; b < batch; ++b) {
        const Sample& s = samples[order[start + b]];
        std::copy(s.transition->observation.begin(),
                  s.transition->observation.end(), observations.RowPtr(b));
        actions[static_cast<size_t>(b)] = s.transition->action;
      }
      BatchEvaluation eval = policy_->ForwardBatch(observations, actions);

      std::vector<SampleGrad> grads(static_cast<size_t>(batch));
      const double inv_batch = 1.0 / static_cast<double>(batch);
      for (int b = 0; b < batch; ++b) {
        const Sample& s = samples[order[start + b]];
        const double ratio =
            std::exp(eval.log_probs[b] - s.transition->log_prob);
        const double clipped = std::clamp(
            ratio, 1.0 - options_.clip_epsilon, 1.0 + options_.clip_epsilon);
        const bool unclipped_active =
            ratio * s.advantage <= clipped * s.advantage + 1e-12;
        SampleGrad& g = grads[static_cast<size_t>(b)];
        g.d_log_prob =
            unclipped_active ? -ratio * s.advantage * inv_batch : 0.0;
        g.d_entropy = -options_.entropy_coef * inv_batch;
        g.d_value =
            options_.value_coef * 2.0 * (eval.values[b] - s.target) *
            inv_batch;
      }
      ZeroGradients(policy_->Parameters());
      policy_->BackwardBatch(grads);
      ClipGradientsByNorm(policy_->Parameters(), options_.max_grad_norm);
      optimizer_.Step(policy_->Parameters());
    }
  }
}

}  // namespace atena
