#include "rl/parallel_trainer.h"

#include <algorithm>
#include <numeric>

#include "common/file_io.h"
#include "common/logging.h"

namespace atena {

namespace {

PpoUpdater::Options UpdaterOptions(const TrainerOptions& options) {
  PpoUpdater::Options out;
  out.minibatch_size = options.minibatch_size;
  out.epochs_per_update = options.epochs_per_update;
  out.clip_epsilon = options.clip_epsilon;
  out.entropy_coef = options.entropy_coef;
  out.value_coef = options.value_coef;
  out.learning_rate = options.learning_rate;
  out.max_grad_norm = options.max_grad_norm;
  return out;
}

/// Stepping concurrency: 0 = auto (one thread per actor, capped at the
/// hardware concurrency); explicit values are clamped to [1, actors] — more
/// threads than actors can never run, but explicit values may exceed the
/// core count (tests interleave 4 threads on 1-core machines).
int ResolveThreads(int requested, int num_actors) {
  if (requested <= 0) return ThreadPool::DefaultThreads(num_actors);
  return std::max(1, std::min(requested, num_actors));
}

}  // namespace

ParallelPpoTrainer::ParallelPpoTrainer(std::vector<EdaEnvironment*> envs,
                                       Policy* policy,
                                       TrainerOptions options)
    : envs_(std::move(envs)),
      policy_(policy),
      options_(options),
      // Multi-actor runs decorrelate their exploration stream from the
      // single-env trainer's; the 1-actor instance keeps the plain seed
      // because it IS the single-env trainer (PpoTrainer delegates here and
      // must reproduce its historical output bit for bit).
      rng_(envs_.size() > 1 ? options.seed ^ 0x5151 : options.seed),
      buffer_(envs_.size()),
      updater_(policy, UpdaterOptions(options)) {
  ATENA_CHECK(!envs_.empty()) << "parallel trainer needs at least one env";
  // All actors explore the same dataset, so they share one display cache:
  // operation prefixes recomputed by one actor become hits for the others.
  // Safe because cache keys are canonical operation-path signatures and
  // values are exact kernel outputs (hit ≡ recompute, bit-identical) — the
  // cache is the one mutable structure concurrent actor steps share, and it
  // is internally synchronized (DESIGN.md §9).
  if (const auto& shared_cache = envs_[0]->display_cache()) {
    for (EdaEnvironment* env : envs_) env->SetDisplayCache(shared_cache);
  }
  num_threads_ = ResolveThreads(options_.num_threads,
                                static_cast<int>(envs_.size()));
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
  if (options_.guardrails.enabled) {
    guard_ = std::make_unique<TrainingGuard>(options_.guardrails);
  }
}

TrainingResult ParallelPpoTrainer::Train() {
  // A stop request raised before (or during a previous) Train belongs to
  // that run; this run only honors requests raised after it starts.
  ClearTrainingStopRequest();
  result_ = TrainingResult{};
  recent_episode_rewards_.clear();

  const size_t n_envs = envs_.size();
  std::vector<ActorState> actors(n_envs);
  for (size_t e = 0; e < n_envs; ++e) {
    actors[e].observation = envs_[e]->Reset();
  }

  int steps_done = 0;
  int updates_done = 0;
  const bool checkpointing = !options_.checkpoint_path.empty();
  if (checkpointing && options_.resume) {
    TryResumeFromCheckpoint(&actors, &steps_done, &updates_done);
  }

  // In-memory snapshot of the last update boundary, refreshed after every
  // update. A stop between lockstep ticks flushes THIS snapshot, not the
  // mid-rollout state: checkpoints are only meaningful at boundaries (the
  // rollout buffer is empty, and network weights / Adam moments — which the
  // snapshot reads live at flush time via policy_->Parameters() — have not
  // moved since). Resuming from it replays the abandoned partial rollout,
  // so the completed run stays bit-identical to an uninterrupted one.
  TrainingCheckpoint boundary;
  if (checkpointing) {
    boundary = BuildCheckpoint(actors, steps_done, updates_done);
  }

  // The guard's rollback target: the last anomaly-free update boundary,
  // with an explicit copy of the network weights (unlike `boundary`, which
  // reads them live at save time — useless once an update has poisoned
  // them). Refreshed after every clean update.
  TrainingCheckpoint last_good;
  if (guard_) {
    last_good = BuildGuardSnapshot(actors, steps_done, updates_done);
  }

  // Per-update rollout length is split evenly across the actors so the
  // update cadence matches the single-env trainer.
  const int per_actor =
      std::max(1, options_.rollout_length / static_cast<int>(n_envs));
  const int obs_dim = envs_[0]->observation_dim();

  Matrix obs_batch;  // reused across ticks; steady state allocates nothing
  std::vector<StepOutcome> outcomes;
  bool stopped_mid_rollout = false;
  while (steps_done < options_.total_steps) {
    buffer_.Clear();
    for (int i = 0; i < per_actor && steps_done < options_.total_steps; ++i) {
      // The last tick of a budget may cover only the first `m` actors —
      // exactly the actors the historical per-step loop would still visit.
      const int m = std::min(static_cast<int>(n_envs),
                             options_.total_steps - steps_done);
      obs_batch.Resize(m, obs_dim);
      for (int e = 0; e < m; ++e) {
        std::copy(actors[static_cast<size_t>(e)].observation.begin(),
                  actors[static_cast<size_t>(e)].observation.end(),
                  obs_batch.RowPtr(e));
      }
      // One batched forward for the whole tick; rows consume rng_ in actor
      // order, bit-identical to per-actor Act calls.
      std::vector<PolicyStep> steps = policy_->ActBatch(obs_batch, &rng_);

      // Step every actor's environment concurrently. Each task touches only
      // its own environment (own display stack, own Rng stream, own reward
      // signal) plus the internally synchronized shared display cache, and
      // writes its result into its own slot — so the outcome of each step
      // is independent of thread scheduling, and bit-identical to the
      // serial loop.
      outcomes.resize(static_cast<size_t>(m));
      auto step_actor = [&](int e) {
        outcomes[static_cast<size_t>(e)] = ApplyAction(
            envs_[static_cast<size_t>(e)], steps[static_cast<size_t>(e)].action);
      };
      if (pool_) {
        pool_->ParallelFor(m, step_actor);
      } else {
        for (int e = 0; e < m; ++e) step_actor(e);
      }

      // Ordered commit: transitions enter the buffer and every
      // floating-point reduction (episode rewards, best-episode record,
      // recent-reward window) runs serially in fixed actor order.
      for (int e = 0; e < m; ++e, ++steps_done) {
        ActorState& actor = actors[static_cast<size_t>(e)];
        PolicyStep& step = steps[static_cast<size_t>(e)];
        StepOutcome& outcome = outcomes[static_cast<size_t>(e)];

        Transition transition;
        transition.observation = std::move(actor.observation);
        transition.action = step.action;
        transition.log_prob = step.log_prob;
        transition.value = step.value;
        transition.reward = outcome.reward;
        transition.episode_end = outcome.done;
        buffer_.Add(static_cast<size_t>(e), std::move(transition));

        actor.episode_reward += outcome.reward;
        actor.episode_ops.push_back(outcome.op);
        actor.observation = std::move(outcome.observation);

        if (outcome.done) {
          ++result_.episodes;
          recent_episode_rewards_.push_back(actor.episode_reward);
          if (recent_episode_rewards_.size() > 50) {
            recent_episode_rewards_.erase(recent_episode_rewards_.begin());
          }
          if (actor.episode_reward > result_.best_episode_reward ||
              result_.best_episode_ops.empty()) {
            result_.best_episode_reward = actor.episode_reward;
            result_.best_episode_ops = actor.episode_ops;
          }
          actor.episode_reward = 0.0;
          actor.episode_ops.clear();
          actor.observation = envs_[static_cast<size_t>(e)]->Reset();
        }
      }

      // Between-tick stop poll: SIGINT latency is bounded by one lockstep
      // tick, not one full rollout. The partial rollout is abandoned — the
      // flushed checkpoint is the last update boundary, and resume replays
      // the rollout from there. A stop raised on the budget's final tick
      // falls through so the closing update still runs, exactly as an
      // uninterrupted run would.
      if (TrainingStopRequested() && steps_done < options_.total_steps) {
        stopped_mid_rollout = true;
        break;
      }
    }
    if (stopped_mid_rollout) {
      if (checkpointing) WriteCheckpoint(boundary);
      result_.interrupted = true;
      ATENA_LOG(kInfo) << "training interrupted mid-rollout at step "
                       << steps_done << (checkpointing
                                             ? ", checkpoint flushed at update "
                                             : " (update ")
                       << updates_done << (checkpointing ? "" : ")");
      break;
    }

    // Bootstrap tail values for every stream that ended mid-episode, again
    // with a single batched (greedy, rng-free) forward.
    std::vector<double> bootstrap(n_envs, 0.0);
    std::vector<size_t> pending;
    for (size_t e = 0; e < n_envs; ++e) {
      if (buffer_.StreamNeedsBootstrap(e)) pending.push_back(e);
    }
    if (!pending.empty()) {
      Matrix probe(static_cast<int>(pending.size()), obs_dim);
      for (size_t k = 0; k < pending.size(); ++k) {
        std::copy(actors[pending[k]].observation.begin(),
                  actors[pending[k]].observation.end(),
                  probe.RowPtr(static_cast<int>(k)));
      }
      std::vector<PolicyStep> probes = policy_->ActBatch(probe, nullptr);
      for (size_t k = 0; k < pending.size(); ++k) {
        bootstrap[pending[k]] = probes[k].value;
      }
    }
    UpdateStats stats = updater_.Update(
        buffer_.ComputeGae(bootstrap, options_.gamma, options_.gae_lambda),
        &rng_);

    const bool has_reward = !recent_episode_rewards_.empty();
    const double mean_reward =
        !has_reward ? 0.0
                    : std::accumulate(recent_episode_rewards_.begin(),
                                      recent_episode_rewards_.end(), 0.0) /
                          static_cast<double>(recent_episode_rewards_.size());

    // Serial post-update guard hook (DESIGN.md §10). On an anomaly the
    // update that just ran — weights, Adam moments, Rng draws, rollout
    // progress, everything — is undone by re-applying the last-good
    // snapshot, the learning rate is backed off, and the loop re-collects
    // the rollout from the rollback point with the checkpointed Rng
    // streams (deterministically: a crash-resume from the persisted guard
    // state replays the identical recovery).
    if (guard_) {
      GuardTrigger trigger =
          guard_->Check(updates_done, stats, mean_reward, has_reward);
      if (trigger != GuardTrigger::kNone) {
        Status verdict =
            guard_->OnAnomaly(trigger, updates_done, stats, mean_reward);
        ApplyCheckpoint(last_good, &actors, &steps_done, &updates_done);
        updater_.SetLearningRateScale(guard_->lr_scale());
        if (checkpointing) {
          boundary = BuildCheckpoint(actors, steps_done, updates_done);
          WriteCheckpoint(boundary);
        }
        if (!verdict.ok()) {
          result_.guard_status = verdict;
          ATENA_LOG(kError) << "training aborted by guard: " << verdict;
          break;
        }
        continue;
      }
    }

    CurvePoint point;
    point.step = steps_done;
    point.mean_episode_reward = mean_reward;
    result_.curve.push_back(point);
    if (progress_) progress_(point);

    ++updates_done;
    if (guard_) {
      guard_->NoteGoodUpdate(updates_done);
      last_good = BuildGuardSnapshot(actors, steps_done, updates_done);
    }
    bool saved_this_update = false;
    if (checkpointing) {
      boundary = BuildCheckpoint(actors, steps_done, updates_done);
      if (options_.checkpoint_every_updates > 0 &&
          updates_done % options_.checkpoint_every_updates == 0) {
        WriteCheckpoint(boundary);
        saved_this_update = true;
      }
    }
    // Cooperative interruption (SIGINT in the examples): flush a final
    // snapshot and hand back the partial result. Resuming from that
    // snapshot continues the run bit-identically.
    if (TrainingStopRequested()) {
      if (checkpointing && !saved_this_update) WriteCheckpoint(boundary);
      result_.interrupted = true;
      ATENA_LOG(kInfo) << "training interrupted at step " << steps_done
                       << " (update " << updates_done << ")"
                       << (checkpointing ? ", checkpoint flushed" : "");
      break;
    }
  }

  result_.final_mean_reward =
      result_.curve.empty() ? 0.0 : result_.curve.back().mean_episode_reward;
  if (guard_) result_.guard = guard_->summary();
  // A guard abort skips the final evaluation like an interruption does:
  // the result carries the rolled-back (all-finite) weights' progress and
  // the structured guard_status.
  if (result_.interrupted || !result_.guard_status.ok()) return result_;

  // Final evaluation on the first actor's environment: the published
  // notebook should reflect the trained policy, so the best of
  // `final_eval_episodes` post-training episodes competes with the best
  // episode seen during training.
  for (int episode = 0; episode < options_.final_eval_episodes; ++episode) {
    std::vector<double> obs = envs_[0]->Reset();
    double reward = 0.0;
    std::vector<EdaOperation> ops;
    while (!envs_[0]->done()) {
      PolicyStep step = policy_->Act(obs, &rng_);
      StepOutcome outcome = ApplyAction(envs_[0], step.action);
      reward += outcome.reward;
      ops.push_back(outcome.op);
      obs = std::move(outcome.observation);
    }
    if (reward > result_.best_episode_reward) {
      result_.best_episode_reward = reward;
      result_.best_episode_ops = std::move(ops);
    }
  }
  return result_;
}

TrainingCheckpoint ParallelPpoTrainer::BuildCheckpoint(
    const std::vector<ActorState>& actors, int steps_done,
    int updates_done) const {
  TrainingCheckpoint ckpt;
  ckpt.steps_done = steps_done;
  ckpt.updates_done = updates_done;
  ckpt.trainer_rng = rng_.state();
  const Adam* adam = updater_.optimizer();
  ckpt.adam_step = adam->step_count();
  ckpt.adam_m = adam->first_moments();
  ckpt.adam_v = adam->second_moments();
  ckpt.curve = result_.curve;
  ckpt.recent_episode_rewards = recent_episode_rewards_;
  ckpt.best_episode_ops = result_.best_episode_ops;
  ckpt.best_episode_reward = result_.best_episode_reward;
  ckpt.episodes = result_.episodes;
  ckpt.actors.reserve(actors.size());
  for (size_t e = 0; e < actors.size(); ++e) {
    ActorCheckpoint actor;
    actor.env_seed = envs_[e]->config().seed;
    actor.env_rng = envs_[e]->rng_state();
    actor.episode_reward = actors[e].episode_reward;
    actor.episode_ops = actors[e].episode_ops;
    ckpt.actors.push_back(std::move(actor));
  }
  if (guard_) ckpt.guard = guard_->checkpoint_state();
  return ckpt;
}

TrainingCheckpoint ParallelPpoTrainer::BuildGuardSnapshot(
    const std::vector<ActorState>& actors, int steps_done,
    int updates_done) const {
  TrainingCheckpoint ckpt = BuildCheckpoint(actors, steps_done, updates_done);
  const std::vector<Parameter*> params = policy_->Parameters();
  ckpt.param_values.reserve(params.size());
  for (const Parameter* p : params) ckpt.param_values.push_back(p->value);
  return ckpt;
}

void ParallelPpoTrainer::ApplyCheckpoint(const TrainingCheckpoint& ckpt,
                                         std::vector<ActorState>* actors,
                                         int* steps_done, int* updates_done) {
  // Commit: network weights, optimizer moments, trainer rng and progress.
  std::vector<Parameter*> params = policy_->Parameters();
  ATENA_CHECK(ckpt.param_values.size() == params.size())
      << "checkpoint param count " << ckpt.param_values.size()
      << " does not match network " << params.size();
  for (size_t k = 0; k < params.size(); ++k) {
    params[k]->value = ckpt.param_values[k];
  }
  updater_.optimizer()->SetState(ckpt.adam_step, ckpt.adam_m, ckpt.adam_v);
  rng_.set_state(ckpt.trainer_rng);
  result_.curve = ckpt.curve;
  result_.best_episode_ops = ckpt.best_episode_ops;
  result_.best_episode_reward = ckpt.best_episode_reward;
  result_.episodes = ckpt.episodes;
  recent_episode_rewards_ = ckpt.recent_episode_rewards;

  // Rebuild each environment's mid-episode state by replaying the resolved
  // operations of the in-flight episode. Replay goes through StepOperation,
  // which consumes no randomness, and the env Rng stream is restored
  // afterwards — so the next sampled filter term is exactly the one the
  // snapshotted run would have drawn.
  for (size_t e = 0; e < envs_.size(); ++e) {
    ActorState& actor = (*actors)[e];
    actor.observation = envs_[e]->Reset();
    for (const EdaOperation& op : ckpt.actors[e].episode_ops) {
      StepOutcome outcome = envs_[e]->StepOperation(op);
      actor.observation = std::move(outcome.observation);
    }
    envs_[e]->set_rng_state(ckpt.actors[e].env_rng);
    actor.episode_reward = ckpt.actors[e].episode_reward;
    actor.episode_ops = ckpt.actors[e].episode_ops;
  }

  *steps_done = ckpt.steps_done;
  *updates_done = ckpt.updates_done;
}

void ParallelPpoTrainer::WriteCheckpoint(const TrainingCheckpoint& ckpt) const {
  Status status = SaveTrainingCheckpoint(options_.checkpoint_path,
                                         policy_->Parameters(), ckpt);
  if (!status.ok()) {
    // A failing disk should not abort training that may still complete (or
    // reach a healthier later snapshot) in memory.
    ATENA_LOG(kWarning) << "checkpoint save failed: " << status;
  } else {
    ATENA_LOG(kDebug) << "checkpoint written to " << options_.checkpoint_path
                      << " at step " << ckpt.steps_done;
  }
}

bool ParallelPpoTrainer::TryResumeFromCheckpoint(
    std::vector<ActorState>* actors, int* steps_done, int* updates_done) {
  const std::string& path = options_.checkpoint_path;
  if (!FileExists(path) && !FileExists(path + ".prev")) {
    ATENA_LOG(kInfo) << "no checkpoint at " << path << ", starting fresh";
    return false;
  }
  std::vector<Parameter*> params = policy_->Parameters();
  TrainingCheckpoint ckpt;
  CheckpointLoadInfo info;
  Status status = LoadTrainingCheckpoint(path, params, &ckpt, &info);
  if (!status.ok()) {
    ATENA_LOG(kWarning) << "resume failed, starting fresh: " << status;
    return false;
  }
  if (info.recovered_from_prev) {
    ATENA_LOG(kWarning) << "checkpoint " << path
                        << " unreadable, recovered from .prev ("
                        << info.primary_error << ")";
  }

  // Validate the snapshot against this trainer's configuration before
  // touching any state, so a mismatched checkpoint can never leave the
  // network or environments half-restored. The stepping thread count is
  // deliberately NOT part of a checkpoint: any num_threads resumes any
  // snapshot bit-identically (DESIGN.md §9).
  if (ckpt.actors.size() != envs_.size()) {
    ATENA_LOG(kWarning) << "resume failed, starting fresh: checkpoint has "
                        << ckpt.actors.size() << " actors, trainer has "
                        << envs_.size();
    return false;
  }
  for (size_t e = 0; e < envs_.size(); ++e) {
    if (ckpt.actors[e].env_seed != envs_[e]->config().seed) {
      ATENA_LOG(kWarning)
          << "resume failed, starting fresh: actor " << e
          << " env seed mismatch (checkpoint " << ckpt.actors[e].env_seed
          << ", trainer " << envs_[e]->config().seed << ")";
      return false;
    }
    const auto& ops = ckpt.actors[e].episode_ops;
    if (static_cast<int>(ops.size()) >= envs_[e]->config().episode_length) {
      ATENA_LOG(kWarning) << "resume failed, starting fresh: actor " << e
                          << " episode has " << ops.size()
                          << " ops but episodes are only "
                          << envs_[e]->config().episode_length << " steps";
      return false;
    }
    for (const EdaOperation& op : ops) {
      if (!OpExecutableOn(envs_[e]->table(), op)) {
        ATENA_LOG(kWarning) << "resume failed, starting fresh: actor " << e
                            << " episode references a column outside the "
                               "dataset schema";
        return false;
      }
    }
  }
  // The best-episode record is replayed too (RunAtena turns it into the
  // published notebook), so its operations face the same schema check as
  // the in-flight episodes — a container recorded against a different
  // dataset must be rejected here, not crash inside a replay.
  for (const EdaOperation& op : ckpt.best_episode_ops) {
    if (!OpExecutableOn(envs_[0]->table(), op)) {
      ATENA_LOG(kWarning) << "resume failed, starting fresh: best episode "
                             "references a column outside the dataset schema";
      return false;
    }
  }

  ApplyCheckpoint(ckpt, actors, steps_done, updates_done);

  // Guard recovery state: a crash mid-recovery resumes with the same spent
  // retry budget and backed-off learning rate it would have kept running
  // with, so the recovered run is bit-identical either way.
  if (guard_) {
    guard_->RestoreCheckpointState(ckpt.guard, ckpt.updates_done);
    updater_.SetLearningRateScale(guard_->lr_scale());
  } else if (!ckpt.guard.IsDefault()) {
    ATENA_LOG(kWarning)
        << "checkpoint carries training-guard state (lr_scale "
        << ckpt.guard.lr_scale << ", " << ckpt.guard.retries_used
        << " retries used) but guardrails are disabled; continuing "
           "unguarded at the full learning rate";
  }

  ATENA_LOG(kInfo) << "resumed from " << path << " at step "
                   << ckpt.steps_done << " (update " << ckpt.updates_done
                   << ", " << result_.episodes << " episodes)";
  return true;
}

}  // namespace atena
