#include "rl/rollout.h"

namespace atena {

EdaNotebook RolloutNotebook(EdaEnvironment* env, Policy* policy, Rng* rng,
                            std::string generator, double* total_reward,
                            bool greedy) {
  std::vector<double> observation = env->Reset();
  double total = 0.0;
  while (!env->done()) {
    PolicyStep step = greedy ? policy->ActGreedy(observation)
                             : policy->Act(observation, rng);
    StepOutcome outcome = ApplyAction(env, step.action);
    total += outcome.reward;
    observation = std::move(outcome.observation);
  }
  if (total_reward != nullptr) *total_reward = total;
  return NotebookFromSession(*env, std::move(generator));
}

}  // namespace atena
