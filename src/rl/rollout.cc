#include "rl/rollout.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

namespace atena {
namespace {

PpoFaultHook* FaultHook() {
  static PpoFaultHook hook;
  return &hook;
}

}  // namespace

void SetPpoFaultInjectionHookForTesting(PpoFaultHook hook) {
  *FaultHook() = std::move(hook);
}

void RolloutBuffer::Clear() {
  for (auto& stream : streams_) stream.clear();
}

std::vector<Sample> RolloutBuffer::ComputeGae(
    const std::vector<double>& bootstrap_values, double gamma,
    double lambda) const {
  std::vector<Sample> samples;
  for (size_t e = 0; e < streams_.size(); ++e) {
    const auto& stream = streams_[e];
    if (stream.empty()) continue;

    const bool last_done = stream.back().episode_end;
    const double last_value = last_done ? 0.0 : bootstrap_values[e];

    double gae = 0.0;
    double next_value = last_value;
    bool next_terminal = last_done;
    std::vector<double> advantages(stream.size());
    for (size_t i = stream.size(); i-- > 0;) {
      const Transition& t = stream[i];
      const double bootstrap = next_terminal ? 0.0 : next_value;
      const double delta = t.reward + gamma * bootstrap - t.value;
      gae = delta + (next_terminal ? 0.0 : gamma * lambda * gae);
      advantages[i] = gae;
      next_value = t.value;
      next_terminal = t.episode_end;
    }
    for (size_t i = 0; i < stream.size(); ++i) {
      samples.push_back(
          Sample{&stream[i], advantages[i], advantages[i] + stream[i].value});
    }
  }
  return samples;
}

PpoUpdater::PpoUpdater(Policy* policy, Options options)
    : policy_(policy),
      options_(options),
      optimizer_(Adam::Options{.learning_rate = options.learning_rate,
                               .beta1 = 0.9,
                               .beta2 = 0.999,
                               .epsilon = 1e-8}) {}

void PpoUpdater::SetLearningRateScale(double scale) {
  optimizer_.set_learning_rate(options_.learning_rate * scale);
}

UpdateStats PpoUpdater::Update(std::vector<Sample> samples, Rng* rng) {
  UpdateStats stats;
  const GuardFault fault =
      *FaultHook() ? (*FaultHook())(update_calls_) : GuardFault::kNone;
  ++update_calls_;

  const size_t n = samples.size();
  if (n == 0) return stats;

  // Normalize advantages across the merged batch (standard PPO practice;
  // keeps gradient scale stable across the compound reward's calibration
  // regimes).
  double mean = 0.0;
  for (const auto& s : samples) mean += s.advantage;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (const auto& s : samples) {
    var += (s.advantage - mean) * (s.advantage - mean);
  }
  const double stddev = std::sqrt(var / static_cast<double>(n)) + 1e-8;
  for (auto& s : samples) s.advantage = (s.advantage - mean) / stddev;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const int obs_dim =
      static_cast<int>(samples[0].transition->observation.size());

  Matrix observations;
  double loss_policy = 0.0;
  double loss_value = 0.0;
  double entropy_sum = 0.0;
  for (int epoch = 0; epoch < options_.epochs_per_update; ++epoch) {
    rng->Shuffle(order);
    for (size_t start = 0; start < n;
         start += static_cast<size_t>(options_.minibatch_size)) {
      const size_t end =
          std::min(n, start + static_cast<size_t>(options_.minibatch_size));
      const int batch = static_cast<int>(end - start);

      observations.Resize(batch, obs_dim);
      std::vector<ActionRecord> actions(static_cast<size_t>(batch));
      for (int b = 0; b < batch; ++b) {
        const Sample& s = samples[order[start + b]];
        std::copy(s.transition->observation.begin(),
                  s.transition->observation.end(), observations.RowPtr(b));
        actions[static_cast<size_t>(b)] = s.transition->action;
      }
      BatchEvaluation eval = policy_->ForwardBatch(observations, actions);

      std::vector<SampleGrad> grads(static_cast<size_t>(batch));
      const double inv_batch = 1.0 / static_cast<double>(batch);
      for (int b = 0; b < batch; ++b) {
        const Sample& s = samples[order[start + b]];
        const double ratio =
            std::exp(eval.log_probs[b] - s.transition->log_prob);
        const double clipped = std::clamp(
            ratio, 1.0 - options_.clip_epsilon, 1.0 + options_.clip_epsilon);
        // Surrogate L = min(r·A, clip(r)·A); we minimize -L.
        // d(-L)/dlogp = -r·A when the unclipped branch is active, else 0.
        const bool unclipped_active =
            ratio * s.advantage <= clipped * s.advantage + 1e-12;
        SampleGrad& g = grads[static_cast<size_t>(b)];
        g.d_log_prob =
            unclipped_active ? -ratio * s.advantage * inv_batch : 0.0;
        g.d_entropy = -options_.entropy_coef * inv_batch;
        g.d_value = options_.value_coef * 2.0 *
                    (eval.values[b] - s.target) * inv_batch;
        // Observation only: the losses the gradients above descend.
        loss_policy -= std::min(ratio * s.advantage, clipped * s.advantage);
        loss_value += (eval.values[b] - s.target) * (eval.values[b] - s.target);
        entropy_sum += eval.entropies[b];
      }
      ZeroGradients(policy_->Parameters());
      policy_->BackwardBatch(grads);
      if (fault == GuardFault::kInfGradient && stats.minibatches == 0 &&
          !policy_->Parameters().empty()) {
        policy_->Parameters()[0]->grad.data()[0] =
            std::numeric_limits<double>::infinity();
      }
      GradClipResult clip =
          ClipGradientsByNorm(policy_->Parameters(), options_.max_grad_norm);
      if (!std::isfinite(clip.pre_clip_norm)) {
        stats.grad_norm_max = clip.pre_clip_norm;
      } else if (std::isfinite(stats.grad_norm_max)) {
        stats.grad_norm_max = std::max(stats.grad_norm_max, clip.pre_clip_norm);
      }
      stats.nonfinite_grad_values += clip.nonfinite_count;
      optimizer_.Step(policy_->Parameters());
      ++stats.minibatches;
    }
  }
  const double inv_seen =
      1.0 / (static_cast<double>(options_.epochs_per_update) *
             static_cast<double>(n));
  stats.policy_loss = loss_policy * inv_seen;
  stats.value_loss = loss_value * inv_seen;
  stats.entropy = entropy_sum * inv_seen;
  if (fault == GuardFault::kNanLoss) {
    stats.policy_loss = std::numeric_limits<double>::quiet_NaN();
  } else if (fault == GuardFault::kEntropyCollapse) {
    stats.entropy = 0.0;
  }
  return stats;
}

EdaNotebook RolloutNotebook(EdaEnvironment* env, Policy* policy, Rng* rng,
                            std::string generator, double* total_reward,
                            bool greedy) {
  std::vector<double> observation = env->Reset();
  double total = 0.0;
  while (!env->done()) {
    PolicyStep step = greedy ? policy->ActGreedy(observation)
                             : policy->Act(observation, rng);
    StepOutcome outcome = ApplyAction(env, step.action);
    total += outcome.reward;
    observation = std::move(outcome.observation);
  }
  if (total_reward != nullptr) *total_reward = total;
  return NotebookFromSession(*env, std::move(generator));
}

}  // namespace atena
