#include "rl/rollout.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace atena {

void RolloutBuffer::Clear() {
  for (auto& stream : streams_) stream.clear();
}

std::vector<Sample> RolloutBuffer::ComputeGae(
    const std::vector<double>& bootstrap_values, double gamma,
    double lambda) const {
  std::vector<Sample> samples;
  for (size_t e = 0; e < streams_.size(); ++e) {
    const auto& stream = streams_[e];
    if (stream.empty()) continue;

    const bool last_done = stream.back().episode_end;
    const double last_value = last_done ? 0.0 : bootstrap_values[e];

    double gae = 0.0;
    double next_value = last_value;
    bool next_terminal = last_done;
    std::vector<double> advantages(stream.size());
    for (size_t i = stream.size(); i-- > 0;) {
      const Transition& t = stream[i];
      const double bootstrap = next_terminal ? 0.0 : next_value;
      const double delta = t.reward + gamma * bootstrap - t.value;
      gae = delta + (next_terminal ? 0.0 : gamma * lambda * gae);
      advantages[i] = gae;
      next_value = t.value;
      next_terminal = t.episode_end;
    }
    for (size_t i = 0; i < stream.size(); ++i) {
      samples.push_back(
          Sample{&stream[i], advantages[i], advantages[i] + stream[i].value});
    }
  }
  return samples;
}

PpoUpdater::PpoUpdater(Policy* policy, Options options)
    : policy_(policy),
      options_(options),
      optimizer_(Adam::Options{.learning_rate = options.learning_rate,
                               .beta1 = 0.9,
                               .beta2 = 0.999,
                               .epsilon = 1e-8}) {}

void PpoUpdater::Update(std::vector<Sample> samples, Rng* rng) {
  const size_t n = samples.size();
  if (n == 0) return;

  // Normalize advantages across the merged batch (standard PPO practice;
  // keeps gradient scale stable across the compound reward's calibration
  // regimes).
  double mean = 0.0;
  for (const auto& s : samples) mean += s.advantage;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (const auto& s : samples) {
    var += (s.advantage - mean) * (s.advantage - mean);
  }
  const double stddev = std::sqrt(var / static_cast<double>(n)) + 1e-8;
  for (auto& s : samples) s.advantage = (s.advantage - mean) / stddev;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const int obs_dim =
      static_cast<int>(samples[0].transition->observation.size());

  Matrix observations;
  for (int epoch = 0; epoch < options_.epochs_per_update; ++epoch) {
    rng->Shuffle(order);
    for (size_t start = 0; start < n;
         start += static_cast<size_t>(options_.minibatch_size)) {
      const size_t end =
          std::min(n, start + static_cast<size_t>(options_.minibatch_size));
      const int batch = static_cast<int>(end - start);

      observations.Resize(batch, obs_dim);
      std::vector<ActionRecord> actions(static_cast<size_t>(batch));
      for (int b = 0; b < batch; ++b) {
        const Sample& s = samples[order[start + b]];
        std::copy(s.transition->observation.begin(),
                  s.transition->observation.end(), observations.RowPtr(b));
        actions[static_cast<size_t>(b)] = s.transition->action;
      }
      BatchEvaluation eval = policy_->ForwardBatch(observations, actions);

      std::vector<SampleGrad> grads(static_cast<size_t>(batch));
      const double inv_batch = 1.0 / static_cast<double>(batch);
      for (int b = 0; b < batch; ++b) {
        const Sample& s = samples[order[start + b]];
        const double ratio =
            std::exp(eval.log_probs[b] - s.transition->log_prob);
        const double clipped = std::clamp(
            ratio, 1.0 - options_.clip_epsilon, 1.0 + options_.clip_epsilon);
        // Surrogate L = min(r·A, clip(r)·A); we minimize -L.
        // d(-L)/dlogp = -r·A when the unclipped branch is active, else 0.
        const bool unclipped_active =
            ratio * s.advantage <= clipped * s.advantage + 1e-12;
        SampleGrad& g = grads[static_cast<size_t>(b)];
        g.d_log_prob =
            unclipped_active ? -ratio * s.advantage * inv_batch : 0.0;
        g.d_entropy = -options_.entropy_coef * inv_batch;
        g.d_value = options_.value_coef * 2.0 *
                    (eval.values[b] - s.target) * inv_batch;
      }
      ZeroGradients(policy_->Parameters());
      policy_->BackwardBatch(grads);
      ClipGradientsByNorm(policy_->Parameters(), options_.max_grad_norm);
      optimizer_.Step(policy_->Parameters());
    }
  }
}

EdaNotebook RolloutNotebook(EdaEnvironment* env, Policy* policy, Rng* rng,
                            std::string generator, double* total_reward,
                            bool greedy) {
  std::vector<double> observation = env->Reset();
  double total = 0.0;
  while (!env->done()) {
    PolicyStep step = greedy ? policy->ActGreedy(observation)
                             : policy->Act(observation, rng);
    StepOutcome outcome = ApplyAction(env, step.action);
    total += outcome.reward;
    observation = std::move(outcome.observation);
  }
  if (total_reward != nullptr) *total_reward = total;
  return NotebookFromSession(*env, std::move(generator));
}

}  // namespace atena
