#include "rl/guardrails.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/file_io.h"
#include "common/logging.h"

namespace atena {
namespace {

/// Rolling median of a small window. Copies so the window's insertion
/// order (which is the eviction order) is never disturbed.
double Median(const std::vector<double>& window) {
  std::vector<double> sorted = window;
  size_t mid = sorted.size() / 2;
  std::nth_element(sorted.begin(), sorted.begin() + mid, sorted.end());
  double hi = sorted[mid];
  if (sorted.size() % 2 == 1) return hi;
  double lo = *std::max_element(sorted.begin(), sorted.begin() + mid);
  return lo + (hi - lo) / 2.0;
}

void PushWindow(std::vector<double>* window, double value, int capacity) {
  window->push_back(value);
  if (static_cast<int>(window->size()) > capacity) {
    window->erase(window->begin());
  }
}

/// JSON-safe number: finite doubles round-trip via %.17g, non-finite ones
/// (which JSON cannot represent) become the strings "nan"/"inf"/"-inf".
std::string JsonNumber(double value) {
  if (std::isnan(value)) return "\"nan\"";
  if (std::isinf(value)) return value > 0 ? "\"inf\"" : "\"-inf\"";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

const char* GuardTriggerName(GuardTrigger trigger) {
  switch (trigger) {
    case GuardTrigger::kNone:
      return "none";
    case GuardTrigger::kNonFiniteLoss:
      return "non_finite_loss";
    case GuardTrigger::kNonFiniteGradient:
      return "non_finite_gradient";
    case GuardTrigger::kExplodingGradient:
      return "exploding_gradient";
    case GuardTrigger::kEntropyCollapse:
      return "entropy_collapse";
    case GuardTrigger::kRewardDivergence:
      return "reward_divergence";
  }
  return "unknown";
}

TrainingGuard::TrainingGuard(GuardrailOptions options)
    : options_(std::move(options)) {}

GuardTrigger TrainingGuard::Check(int update_index, const UpdateStats& stats,
                                  double mean_episode_reward,
                                  bool has_reward) {
  (void)update_index;
  // Detection order is severity order: a NaN loss usually implies NaN
  // gradients too, and naming the most upstream symptom makes the health
  // log actionable.
  if (!std::isfinite(stats.policy_loss) || !std::isfinite(stats.value_loss) ||
      !std::isfinite(stats.entropy)) {
    return GuardTrigger::kNonFiniteLoss;
  }
  if (!std::isfinite(stats.grad_norm_max) || stats.nonfinite_grad_values > 0) {
    return GuardTrigger::kNonFiniteGradient;
  }
  if (stats.grad_norm_max > options_.grad_norm_abs_max) {
    return GuardTrigger::kExplodingGradient;
  }
  if (static_cast<int>(grad_norms_.size()) >= options_.grad_norm_window) {
    double median = Median(grad_norms_);
    if (median > 0.0 &&
        stats.grad_norm_max > options_.grad_norm_factor * median) {
      return GuardTrigger::kExplodingGradient;
    }
  }
  if (stats.minibatches > 0 && stats.entropy < options_.entropy_floor) {
    return GuardTrigger::kEntropyCollapse;
  }
  if (has_reward) {
    if (static_cast<int>(rewards_.size()) >= options_.reward_window) {
      double median = Median(rewards_);
      double drop = std::max(options_.reward_drop_abs,
                             options_.reward_drop_frac * std::fabs(median));
      if (mean_episode_reward < median - drop) {
        ++reward_strikes_;
        if (reward_strikes_ >= options_.reward_patience) {
          return GuardTrigger::kRewardDivergence;
        }
      } else {
        reward_strikes_ = 0;
      }
    }
    // A divergence strike still counts as a clean update until patience
    // runs out, so its reward feeds the window like any other.
    PushWindow(&rewards_, mean_episode_reward, options_.reward_window);
  }
  PushWindow(&grad_norms_, stats.grad_norm_max, options_.grad_norm_window);
  return GuardTrigger::kNone;
}

void TrainingGuard::NoteGoodUpdate(int update_index) {
  state_.last_good_update = update_index;
}

Status TrainingGuard::OnAnomaly(GuardTrigger trigger, int update_index,
                                const UpdateStats& stats,
                                double mean_episode_reward) {
  // Whatever happens next, the anomalous stretch must not poison the
  // detectors: the retried (or crash-resumed) run re-grows the windows
  // from the rollback point, which keeps both paths bit-identical.
  grad_norms_.clear();
  rewards_.clear();
  reward_strikes_ = 0;

  if (state_.retries_used >= options_.max_retries) {
    AppendEvent(trigger, update_index, stats, mean_episode_reward, "abort");
    return Status::ResourceExhausted(
        std::string("training guard: ") + GuardTriggerName(trigger) +
        " at update " + std::to_string(update_index) + " with retry budget (" +
        std::to_string(options_.max_retries) +
        ") exhausted; weights rolled back to update " +
        std::to_string(state_.last_good_update));
  }
  ++state_.retries_used;
  state_.lr_scale *= options_.lr_backoff;
  AppendEvent(trigger, update_index, stats, mean_episode_reward, "rollback");
  ATENA_LOG(kWarning) << "training guard: " << GuardTriggerName(trigger)
                      << " at update " << update_index
                      << "; rolling back to update "
                      << state_.last_good_update << " (retry "
                      << state_.retries_used << "/" << options_.max_retries
                      << ", lr_scale " << state_.lr_scale << ")";
  return Status::OK();
}

void TrainingGuard::RestoreCheckpointState(const GuardCheckpointState& state,
                                           int resumed_update) {
  state_ = state;
  if (state_.last_good_update == 0) {
    state_.last_good_update = resumed_update;
  }
  // Resuming clears the windows just like a rollback does — the interrupted
  // rollout never completed an update, so there is nothing valid to keep —
  // which is exactly why crash-mid-recovery resumes bit-identically.
  grad_norms_.clear();
  rewards_.clear();
  reward_strikes_ = 0;
  log_.clear();
  if (state_.events_logged > 0 && !options_.health_log_path.empty() &&
      FileExists(options_.health_log_path)) {
    Status read = ReadFileToString(options_.health_log_path, &log_);
    if (!read.ok()) {
      ATENA_LOG(kWarning) << "training guard: could not reload health log "
                          << options_.health_log_path << ": "
                          << read.ToString();
      log_.clear();
    }
  }
}

GuardrailSummary TrainingGuard::summary() const {
  GuardrailSummary out;
  out.events = state_.events_logged;
  out.rollbacks = state_.retries_used;
  out.lr_scale = state_.lr_scale;
  return out;
}

void TrainingGuard::AppendEvent(GuardTrigger trigger, int update_index,
                                const UpdateStats& stats,
                                double mean_episode_reward,
                                const char* action) {
  ++state_.events_logged;
  std::string line;
  line += "{\"event\":";
  line += std::to_string(state_.events_logged);
  line += ",\"update\":";
  line += std::to_string(update_index);
  line += ",\"trigger\":\"";
  line += GuardTriggerName(trigger);
  line += "\",\"policy_loss\":";
  line += JsonNumber(stats.policy_loss);
  line += ",\"value_loss\":";
  line += JsonNumber(stats.value_loss);
  line += ",\"entropy\":";
  line += JsonNumber(stats.entropy);
  line += ",\"grad_norm_max\":";
  line += JsonNumber(stats.grad_norm_max);
  line += ",\"nonfinite_grad_values\":";
  line += std::to_string(stats.nonfinite_grad_values);
  line += ",\"mean_episode_reward\":";
  line += JsonNumber(mean_episode_reward);
  line += ",\"action\":\"";
  line += action;
  line += "\",\"last_good_update\":";
  line += std::to_string(state_.last_good_update);
  line += ",\"retries_used\":";
  line += std::to_string(state_.retries_used);
  line += ",\"lr_scale\":";
  line += JsonNumber(state_.lr_scale);
  line += "}\n";
  log_ += line;
  if (options_.health_log_path.empty()) return;
  Status write = AtomicWriteFile(options_.health_log_path, log_);
  if (!write.ok()) {
    // Health logging must never take training down with it.
    ATENA_LOG(kWarning) << "training guard: health log write failed: "
                        << write.ToString();
  }
}

}  // namespace atena
