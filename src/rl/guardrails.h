#ifndef ATENA_RL_GUARDRAILS_H_
#define ATENA_RL_GUARDRAILS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace atena {

/// Training guardrails (DESIGN.md §10): a serial post-update watchdog that
/// turns numerically fragile PPO runs into self-healing ones. After every
/// policy update the trainer hands the guard the update's statistics; on an
/// anomaly the trainer rolls itself back to the last-good update boundary
/// (the in-memory ATENA-CKPT snapshot it already maintains), backs off the
/// learning rate, reseeds the rollout from the checkpointed Rng streams and
/// retries — under a bounded retry budget whose exhaustion surfaces as a
/// structured Status instead of hours of silently poisoned weights.
///
/// Everything here is deterministic: the guard consumes no randomness, its
/// checks read only the serial per-update statistics (bit-identical at any
/// TrainerOptions::num_threads), and its persistent state travels inside
/// the training checkpoint so a crash mid-recovery resumes bit-identically.
/// With `enabled == false` (the default) the trainer never constructs a
/// guard and training output is byte-identical to builds without one.

/// Tunable thresholds of the anomaly detectors plus the recovery policy.
struct GuardrailOptions {
  /// Master escape hatch. Off by default: guardrails are opt-in, and a
  /// disabled guard leaves the training loop (and its checkpoint bytes)
  /// untouched.
  bool enabled = false;

  /// Exploding-gradient detector: the pre-clip global gradient norm of any
  /// minibatch triggers when it exceeds `grad_norm_factor` times the
  /// rolling median of the last `grad_norm_window` clean updates (armed
  /// only once the window is full), or `grad_norm_abs_max` outright.
  double grad_norm_factor = 10.0;
  int grad_norm_window = 16;
  double grad_norm_abs_max = 1e9;

  /// Entropy-collapse detector: mean policy entropy (nats) below this
  /// floor means the softmax heads have saturated — updates from such a
  /// policy are degenerate and rarely recover on their own.
  double entropy_floor = 1e-3;

  /// Reward-divergence detector: the recent mean episode reward falling
  /// more than max(reward_drop_abs, reward_drop_frac * |median|) below the
  /// rolling median of the last `reward_window` clean updates, for
  /// `reward_patience` consecutive updates, triggers. Armed only once the
  /// window is full, so early-training noise cannot fire it.
  double reward_drop_abs = 1.0;
  double reward_drop_frac = 1.0;
  int reward_window = 16;
  int reward_patience = 3;

  /// Recovery policy: every rollback consumes one retry and multiplies the
  /// learning-rate scale by `lr_backoff`; when `max_retries` rollbacks have
  /// been spent, the next anomaly aborts the run with a kResourceExhausted
  /// Status (the weights are still rolled back to the last good snapshot).
  int max_retries = 3;
  double lr_backoff = 0.5;

  /// JSONL health log (one object per guard event, see DESIGN.md §10 for
  /// the schema), written whole-file through the atomic file_io path so a
  /// crash can never leave a torn log. Empty disables logging.
  std::string health_log_path;
};

/// What fired. kNone means the update is clean.
enum class GuardTrigger {
  kNone = 0,
  kNonFiniteLoss,      // NaN/inf policy, value or entropy loss
  kNonFiniteGradient,  // NaN/inf gradient value or pre-clip norm
  kExplodingGradient,  // finite norm over the rolling-median threshold
  kEntropyCollapse,    // mean policy entropy under the floor
  kRewardDivergence,   // sustained drop versus the recent reward window
};
const char* GuardTriggerName(GuardTrigger trigger);

/// Per-update training statistics, produced serially by PpoUpdater::Update
/// regardless of thread count. Pure observations: computing them never
/// perturbs gradients, weights or any Rng stream.
struct UpdateStats {
  /// Mean clipped-surrogate policy loss over every (epoch, sample) pair.
  double policy_loss = 0.0;
  /// Mean squared value-head error over every (epoch, sample) pair.
  double value_loss = 0.0;
  /// Mean policy entropy (nats) over every (epoch, sample) pair.
  double entropy = 0.0;
  /// Largest pre-clip global gradient norm over the update's minibatches
  /// (non-finite when any minibatch produced a non-finite norm).
  double grad_norm_max = 0.0;
  /// Total gradient values zeroed by ClipGradientsByNorm because they were
  /// NaN/inf — distinguishes "clipped" (scaled, fine) from "zeroed-NaN".
  int64_t nonfinite_grad_values = 0;
  /// Minibatch optimizer steps taken (0 for an empty batch).
  int minibatches = 0;
};

/// Corruption kinds injectable into PpoUpdater for fault-injection tests.
enum class GuardFault {
  kNone = 0,
  kNanLoss,          // NaN written into the reported policy loss
  kInfGradient,      // inf written into one gradient slot pre-clip
  kEntropyCollapse,  // reported mean entropy forced to zero
};

/// The guard state that must survive a crash for recovery to resume
/// bit-identically: how much of the retry budget is spent, the accumulated
/// learning-rate scale, and which update the trainer last validated.
/// Persisted inside ATENA-CKPT (rl/checkpoint.h) whenever any guard event
/// has occurred; a checkpoint from an anomaly-free run carries no guard
/// section and stays byte-identical to a guardrails-off checkpoint.
struct GuardCheckpointState {
  int retries_used = 0;
  double lr_scale = 1.0;
  int last_good_update = 0;
  int64_t events_logged = 0;

  /// True when no guard event has ever occurred (last_good_update is
  /// deliberately ignored: it tracks ordinary progress, not anomalies, and
  /// is recoverable from the checkpoint's own update index).
  bool IsDefault() const {
    return retries_used == 0 && lr_scale == 1.0 && events_logged == 0;
  }
};

/// End-of-run guardrail accounting, surfaced on TrainingResult so callers
/// (and the examples' health summaries) need not re-parse the health log.
struct GuardrailSummary {
  int64_t events = 0;
  int rollbacks = 0;
  double lr_scale = 1.0;
};

/// The watchdog itself. The trainer owns one (when enabled), calls Check
/// after every update, and on a trigger calls OnAnomaly — which decides
/// between "roll back and retry" (OK status; the caller restores its
/// last-good snapshot and applies lr_scale()) and "budget exhausted"
/// (kResourceExhausted; the caller still restores the snapshot, then stops
/// and surfaces the status). All methods are single-threaded by design:
/// the guard runs on the trainer's calling thread, after the serial
/// commit, so bit-identity at any num_threads is free.
class TrainingGuard {
 public:
  explicit TrainingGuard(GuardrailOptions options);

  /// Evaluates one completed update. `update_index` is the 0-based index
  /// of the update under test; `mean_episode_reward` is the trainer's
  /// recent-window mean (ignored until `has_reward`). Clean updates feed
  /// the rolling windows; anomalous ones never do.
  GuardTrigger Check(int update_index, const UpdateStats& stats,
                     double mean_episode_reward, bool has_reward);

  /// Marks `update_index` (1-based count, i.e. updates completed) as the
  /// new last-good boundary after a clean update.
  void NoteGoodUpdate(int update_index);

  /// Records the anomaly in the health log and charges the retry budget.
  /// Returns OK when a retry is granted (one retry consumed, lr_scale
  /// multiplied by the backoff, detector windows reset so the retried
  /// stretch is judged fresh — also what a crash-resumed run would see);
  /// returns kResourceExhausted when the budget was already spent.
  Status OnAnomaly(GuardTrigger trigger, int update_index,
                   const UpdateStats& stats, double mean_episode_reward);

  /// The accumulated learning-rate scale (product of backoffs); the caller
  /// applies it to the optimizer after every rollback and on resume.
  double lr_scale() const { return state_.lr_scale; }

  const GuardCheckpointState& checkpoint_state() const { return state_; }

  /// Restores state captured by checkpoint_state(). `resumed_update` is
  /// the checkpoint's update index, used as the last-good boundary when
  /// the persisted state predates any guard event. Reloads the existing
  /// health log (if any) so post-resume events append rather than clobber.
  void RestoreCheckpointState(const GuardCheckpointState& state,
                              int resumed_update);

  GuardrailSummary summary() const;

 private:
  /// Appends one JSONL record to the in-memory log and flushes the whole
  /// log atomically to health_log_path (when configured).
  void AppendEvent(GuardTrigger trigger, int update_index,
                   const UpdateStats& stats, double mean_episode_reward,
                   const char* action);

  GuardrailOptions options_;
  GuardCheckpointState state_;

  /// Rolling windows over clean updates only; cleared on every rollback so
  /// the recovered stretch (and a crash-resumed one) is judged identically.
  std::vector<double> grad_norms_;
  std::vector<double> rewards_;
  int reward_strikes_ = 0;

  /// Full health-log contents (JSONL); rewritten atomically per event.
  std::string log_;
};

}  // namespace atena

#endif  // ATENA_RL_GUARDRAILS_H_
