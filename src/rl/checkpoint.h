#ifndef ATENA_RL_CHECKPOINT_H_
#define ATENA_RL_CHECKPOINT_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "eda/operation.h"
#include "nn/matrix.h"
#include "nn/parameter.h"
#include "rl/trainer.h"

namespace atena {

/// Durable training checkpoints — the `ATENA-CKPT v1` container.
///
/// A checkpoint captures *everything* ParallelPpoTrainer::Train needs to
/// continue a run bit-identically after a crash or interruption: the
/// network weights (the existing ATENA-NN v2 block, embedded verbatim), the
/// Adam moments and step count that a bare weight file silently loses, the
/// trainer's rollout position and Rng stream, the learning curve and
/// best-episode record accumulated so far, and — per actor — the
/// environment seed, the environment's Rng stream, and the in-flight
/// episode's resolved operations (replayed on resume to rebuild the display
/// stack deterministically without consuming any randomness).
///
/// On disk the payload travels inside a CRC32-checksummed frame
/// (common/file_io.h) and is written with atomic rotation: the previous
/// good snapshot survives at `<path>.prev` until a new one is fully
/// durable, so a crash at any byte offset of a save leaves at least one
/// loadable checkpoint. See DESIGN.md §8 for the layout and failure model.

/// Snapshot of one actor's in-flight episode at an update boundary.
struct ActorCheckpoint {
  /// The actor's environment seed (EnvConfig::seed), recorded so a resume
  /// against differently-seeded environments is rejected instead of
  /// silently diverging.
  uint64_t env_seed = 0;
  /// The environment's private Rng stream (filter-term bin sampling).
  RngState env_rng;
  double episode_reward = 0.0;
  /// Resolved operations of the unfinished episode, in execution order.
  std::vector<EdaOperation> episode_ops;
};

/// In-memory image of one ATENA-CKPT v1 snapshot.
struct TrainingCheckpoint {
  /// Rollout position: environment steps completed across all actors.
  int steps_done = 0;
  /// Policy updates completed (drives the checkpoint cadence).
  int updates_done = 0;
  /// The trainer's Rng stream (action sampling + PPO epoch shuffles).
  RngState trainer_rng;

  /// Adam state. Empty moment vectors mean the optimizer had not stepped
  /// yet when the snapshot was taken.
  int64_t adam_step = 0;
  std::vector<Matrix> adam_m;
  std::vector<Matrix> adam_v;

  /// Network weights, positionally matching the parameter list. Filled by
  /// LoadTrainingCheckpoint (already validated against the network);
  /// ignored by SaveTrainingCheckpoint, which serializes the live
  /// parameters it is given instead.
  std::vector<Matrix> param_values;

  /// Partial TrainingResult state accumulated so far.
  std::vector<CurvePoint> curve;
  std::vector<double> recent_episode_rewards;
  std::vector<EdaOperation> best_episode_ops;
  double best_episode_reward = 0.0;
  int episodes = 0;

  std::vector<ActorCheckpoint> actors;

  /// Training-guard recovery state (rl/guardrails.h). Serialized as an
  /// optional section only when non-default — i.e. only once a guard event
  /// has actually occurred — so checkpoints from anomaly-free runs stay
  /// byte-identical whether guardrails were enabled or not, and older
  /// readers' payloads stay parseable by this one.
  GuardCheckpointState guard;
};

/// Renders the checkpoint payload (the bytes inside the checksummed frame).
/// Exposed for tests; production code uses SaveTrainingCheckpoint.
std::string EncodeCheckpointPayload(const std::vector<Parameter*>& params,
                                    const TrainingCheckpoint& ckpt);

/// Parses a payload produced by EncodeCheckpointPayload, validating the
/// embedded parameter block against `params` (count/names/shapes) and the
/// Adam moments against the same shapes. Everything is staged into `*out`;
/// neither `params` nor any optimizer is touched, so a failed load can
/// never leave a network half-restored.
Status DecodeCheckpointPayload(const std::string& payload,
                               const std::vector<Parameter*>& params,
                               const std::string& source,
                               TrainingCheckpoint* out);

/// Durably writes `ckpt` + the live `params` to `path` with rotation:
///   1. the new snapshot is written to `path + ".new"` (atomic temp+rename
///      inside, fsynced),
///   2. an existing `path` is renamed to `path + ".prev"`,
///   3. `path + ".new"` is renamed to `path`.
/// A crash between any two steps leaves either the old snapshot at `path`,
/// or the old at `.prev` and the new at `path`/`.new` — never zero
/// recoverable snapshots once a first save has completed.
Status SaveTrainingCheckpoint(const std::string& path,
                              const std::vector<Parameter*>& params,
                              const TrainingCheckpoint& ckpt);

/// Details of a load, for logging.
struct CheckpointLoadInfo {
  /// True when `path` itself was unreadable/corrupt and the snapshot came
  /// from `path + ".prev"`.
  bool recovered_from_prev = false;
  /// Why `path` was rejected, when recovered_from_prev is true.
  std::string primary_error;
};

/// Loads the newest readable snapshot: tries `path`, then falls back to
/// `path + ".prev"` when the primary is missing, truncated, bit-rotted
/// (CRC), or unparsable. Returns non-OK only when no snapshot can be
/// recovered. On success `out` holds fully validated state (see
/// DecodeCheckpointPayload); on failure nothing is modified.
Status LoadTrainingCheckpoint(const std::string& path,
                              const std::vector<Parameter*>& params,
                              TrainingCheckpoint* out,
                              CheckpointLoadInfo* info = nullptr);

/// True when `op` only references columns that exist in `table` — the one
/// structural property executing a container-sourced operation relies on
/// (enum ranges are already validated by the payload decoder). Checkpoint
/// resume and the serving snapshot loader use it to reject — instead of
/// execute — operations from a container recorded against a different
/// schema, which would otherwise index columns out of bounds.
bool OpExecutableOn(const Table& table, const EdaOperation& op);

/// Loads ONLY the network weights from `path` into `params`, accepting
/// either container this project writes:
///  - a bare ATENA-NN v1/v2 parameter file (nn/serialization.h), or
///  - a full ATENA-CKPT v1 training checkpoint, whose embedded parameter
///    block is used (with the same `.prev` fallback as
///    LoadTrainingCheckpoint when the primary is corrupt).
/// The container's architecture is validated against the constructed
/// network (parameter count, names, shapes): a policy built with different
/// hidden sizes or over a different dataset schema fails with a
/// descriptive Status naming the first mismatch — never undefined
/// behavior — and `params` is untouched on any failure. This is the
/// serving runtime's load path (src/serve/snapshot.h).
Status LoadPolicyParameters(const std::string& path,
                            const std::vector<Parameter*>& params);

}  // namespace atena

#endif  // ATENA_RL_CHECKPOINT_H_
