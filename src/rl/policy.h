#ifndef ATENA_RL_POLICY_H_
#define ATENA_RL_POLICY_H_

#include <vector>

#include "common/random.h"
#include "eda/environment.h"
#include "nn/layers.h"

namespace atena {

/// An action as recorded by a policy. Structured policies (ATENA's twofold
/// architecture, OTS-DRL-B) emit an EnvAction whose filter term the
/// environment resolves from a frequency bin; flat token-level policies
/// (OTS-DRL) emit a fully concrete operation. `flat_index` identifies the
/// action for flat policies' re-evaluation during PPO epochs.
struct ActionRecord {
  EnvAction structured;
  EdaOperation concrete;
  bool is_concrete = false;
  int flat_index = -1;
};

/// What a policy produces for one observation during rollout.
struct PolicyStep {
  ActionRecord action;
  double log_prob = 0.0;
  double entropy = 0.0;
  double value = 0.0;
};

/// Per-sample upstream gradients handed back to the policy during a PPO
/// update: dL/d(log π(a|s)), dL/dH(s), dL/dV(s).
struct SampleGrad {
  double d_log_prob = 0.0;
  double d_entropy = 0.0;
  double d_value = 0.0;
};

/// Result of re-evaluating a batch of stored actions under the current
/// network parameters (needed by PPO's importance ratios).
struct BatchEvaluation {
  std::vector<double> log_probs;
  std::vector<double> entropies;
  std::vector<double> values;
};

/// Abstract actor-critic policy over the EDA action space, with manual
/// backprop through whatever head architecture the concrete policy uses
/// (twofold multi-softmax for ATENA, single flat softmax for the
/// off-the-shelf baselines).
class Policy {
 public:
  virtual ~Policy() = default;

  /// Samples an action (Boltzmann exploration: directly from the softmax
  /// distribution, paper §5).
  virtual PolicyStep Act(const std::vector<double>& observation, Rng* rng) = 0;

  /// Deterministic argmax action, used when extracting the final notebook.
  virtual PolicyStep ActGreedy(const std::vector<double>& observation) = 0;

  /// Acts on a batch of observations (one per row) at once. Row i consumes
  /// `rng` exactly as a per-sample Act on row i would, in row order, so a
  /// batched call is bit-identical to the per-sample loop over the same Rng
  /// stream; a null `rng` selects the greedy action per row. Network-backed
  /// policies override this with a single batched forward pass — the hot
  /// path of multi-actor training; the base implementation just loops.
  virtual std::vector<PolicyStep> ActBatch(const Matrix& observations,
                                           Rng* rng);

  /// Acts on a batch of observations where every row owns its own Rng
  /// stream: row i consumes `rngs[i]` exactly as a per-sample Act on row i
  /// would (a null entry selects the greedy action for that row). Because
  /// no row ever touches another row's stream, a row's action, log_prob
  /// and value are independent of the batch composition — the same
  /// observation + Rng state yields bit-identical results whether the row
  /// is batched with thousands of others or evaluated alone. Entropy, a
  /// training-only exploration diagnostic nothing on the serving path
  /// consumes, is NOT computed by this overload and reported as 0. This is
  /// the primitive behind cross-session batched serving (src/serve/): one
  /// forward pass amortized over many concurrent sessions, each with a
  /// private stream. `rngs.size()` must equal `observations.rows()`.
  /// Network-backed policies override this with a single batched forward
  /// pass; the base implementation loops per sample.
  virtual std::vector<PolicyStep> ActBatch(const Matrix& observations,
                                           const std::vector<Rng*>& rngs);

  /// Forward pass over a batch; caches activations for BackwardBatch.
  /// `actions[i]` must have been produced by this policy type.
  virtual BatchEvaluation ForwardBatch(
      const Matrix& observations,
      const std::vector<ActionRecord>& actions) = 0;

  /// Backpropagates the per-sample upstream gradients through the cached
  /// forward pass, accumulating parameter gradients.
  virtual void BackwardBatch(const std::vector<SampleGrad>& grads) = 0;

  virtual std::vector<Parameter*> Parameters() = 0;

  /// Declares the parameters frozen and precomputes inference-only caches
  /// (see Layer::PrepareForServing). Serving snapshots call this once after
  /// loading weights; attempting to train a frozen policy is a fatal error.
  virtual void PrepareForServing() {}

  /// Number of scalar parameters (for reporting network sizes, paper §5's
  /// pre-output vs flat output comparison).
  int64_t NumParameters();
};

/// Applies a recorded action to the environment.
StepOutcome ApplyAction(EdaEnvironment* env, const ActionRecord& action);

/// Recoverable variant for the serving runtime: routes through the
/// environment's TryStep/TryStepOperation, so an out-of-contract step
/// surfaces as a Status (quarantining one session) instead of aborting
/// the whole process. The environment is untouched on failure.
Result<StepOutcome> TryApplyAction(EdaEnvironment* env,
                                   const ActionRecord& action);

}  // namespace atena

#endif  // ATENA_RL_POLICY_H_
