#include "rl/checkpoint.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/file_io.h"
#include "nn/serialization.h"

namespace atena {

namespace {

constexpr char kCkptMagic[] = "ATENA-CKPT v1";

std::string RenameError(const std::string& from, const std::string& to) {
  return "rename '" + from + "' -> '" + to + "' failed: " +
         std::strerror(errno) + " (errno " + std::to_string(errno) + ")";
}

// ---------------------------------------------------------------------------
// Payload encoding. The payload is a whitespace-delimited text stream of
// keyword-introduced sections; doubles are printed with max_digits10 so
// every value round-trips bit-exactly, and strings are length-prefixed so
// arbitrary dataset tokens survive.

void EncodeRng(std::ostream& out, const RngState& rng) {
  out << rng.words[0] << " " << rng.words[1] << " " << rng.words[2] << " "
      << rng.words[3] << " " << (rng.has_spare_gaussian ? 1 : 0) << " "
      << rng.spare_gaussian;
}

void EncodeValue(std::ostream& out, const Value& value) {
  if (value.is_null()) {
    out << "N";
  } else if (value.is_int()) {
    out << "I " << value.as_int();
  } else if (value.is_double()) {
    out << "D " << value.as_double();
  } else {
    const std::string& s = value.as_string();
    out << "S " << s.size() << " " << s;
  }
}

void EncodeOp(std::ostream& out, const EdaOperation& op) {
  switch (op.type) {
    case OpType::kBack:
      out << "B";
      break;
    case OpType::kGroup:
      out << "G " << op.group.group_column << " "
          << static_cast<int>(op.group.agg) << " " << op.group.agg_column;
      break;
    case OpType::kFilter:
      out << "F " << op.filter.column << " "
          << static_cast<int>(op.filter.op) << " " << op.filter.term_bin
          << " ";
      EncodeValue(out, op.filter.term);
      break;
  }
  out << "\n";
}

void EncodeOps(std::ostream& out, const char* keyword,
               const std::vector<EdaOperation>& ops) {
  out << keyword << " " << ops.size() << "\n";
  for (const EdaOperation& op : ops) EncodeOp(out, op);
}

void EncodeMatrix(std::ostream& out, const Matrix& m) {
  out << m.rows() << " " << m.cols() << "\n";
  const auto& data = m.data();
  for (size_t i = 0; i < data.size(); ++i) {
    out << data[i] << (i + 1 == data.size() ? "" : " ");
  }
  out << "\n";
}

// ---------------------------------------------------------------------------
// Payload decoding. Every read is checked; any surprise aborts the parse
// with a Status naming the source, and nothing is committed to the caller's
// network/optimizer until the whole payload has been validated.

class PayloadReader {
 public:
  PayloadReader(std::istream& in, const std::string& source, size_t limit)
      : in_(in), source_(source), limit_(limit) {}

  Status Fail(const std::string& what) {
    return Status::InvalidArgument("'" + source_ + "': " + what);
  }

  Status ExpectKeyword(const char* keyword) {
    std::string token;
    in_ >> token;
    if (!in_ || token != keyword) {
      return Fail("expected section '" + std::string(keyword) + "', got '" +
                  token + "'");
    }
    return Status::OK();
  }

  template <typename T>
  Status Read(T* value, const char* what) {
    in_ >> *value;
    if (!in_) return Fail(std::string("truncated or malformed ") + what);
    return Status::OK();
  }

  Status ReadCount(int64_t* count, const char* what) {
    ATENA_RETURN_IF_ERROR(Read(count, what));
    if (*count < 0 || static_cast<uint64_t>(*count) > limit_) {
      return Fail(std::string("implausible ") + what + " count " +
                  std::to_string(*count));
    }
    return Status::OK();
  }

  Status ReadRng(RngState* rng) {
    for (auto& word : rng->words) {
      ATENA_RETURN_IF_ERROR(Read(&word, "rng word"));
    }
    int has_spare = 0;
    ATENA_RETURN_IF_ERROR(Read(&has_spare, "rng spare flag"));
    if (has_spare != 0 && has_spare != 1) return Fail("rng spare flag");
    rng->has_spare_gaussian = has_spare == 1;
    ATENA_RETURN_IF_ERROR(Read(&rng->spare_gaussian, "rng spare value"));
    return Status::OK();
  }

  Status ReadValue(Value* value) {
    std::string tag;
    in_ >> tag;
    if (!in_) return Fail("truncated value");
    if (tag == "N") {
      *value = Value::Null();
    } else if (tag == "I") {
      int64_t v = 0;
      ATENA_RETURN_IF_ERROR(Read(&v, "int value"));
      *value = Value(v);
    } else if (tag == "D") {
      double v = 0.0;
      ATENA_RETURN_IF_ERROR(Read(&v, "double value"));
      *value = Value(v);
    } else if (tag == "S") {
      int64_t len = 0;
      ATENA_RETURN_IF_ERROR(ReadCount(&len, "string length"));
      in_.get();  // the single separator after the length
      std::string s(static_cast<size_t>(len), '\0');
      in_.read(s.data(), len);
      if (!in_) return Fail("truncated string value");
      *value = Value(std::move(s));
    } else {
      return Fail("unknown value tag '" + tag + "'");
    }
    return Status::OK();
  }

  Status ReadOp(EdaOperation* op) {
    std::string tag;
    in_ >> tag;
    if (!in_) return Fail("truncated operation");
    if (tag == "B") {
      *op = EdaOperation::Back();
    } else if (tag == "G") {
      int group_column = 0, agg = 0, agg_column = 0;
      ATENA_RETURN_IF_ERROR(Read(&group_column, "group column"));
      ATENA_RETURN_IF_ERROR(Read(&agg, "agg function"));
      ATENA_RETURN_IF_ERROR(Read(&agg_column, "agg column"));
      if (agg < 0 || agg >= kNumAggFuncs) {
        return Fail("agg function " + std::to_string(agg) + " out of range");
      }
      *op = EdaOperation::Group(group_column, static_cast<AggFunc>(agg),
                                agg_column);
    } else if (tag == "F") {
      int column = 0, cmp = 0, term_bin = 0;
      ATENA_RETURN_IF_ERROR(Read(&column, "filter column"));
      ATENA_RETURN_IF_ERROR(Read(&cmp, "filter operator"));
      ATENA_RETURN_IF_ERROR(Read(&term_bin, "filter term bin"));
      if (cmp < 0 || cmp >= kNumCompareOps) {
        return Fail("filter operator " + std::to_string(cmp) +
                    " out of range");
      }
      Value term;
      ATENA_RETURN_IF_ERROR(ReadValue(&term));
      *op = EdaOperation::Filter(column, static_cast<CompareOp>(cmp),
                                 std::move(term), term_bin);
    } else {
      return Fail("unknown operation tag '" + tag + "'");
    }
    return Status::OK();
  }

  Status ReadOps(const char* keyword, std::vector<EdaOperation>* ops) {
    ATENA_RETURN_IF_ERROR(ExpectKeyword(keyword));
    int64_t count = 0;
    ATENA_RETURN_IF_ERROR(ReadCount(&count, keyword));
    ops->clear();
    for (int64_t i = 0; i < count; ++i) {
      EdaOperation op;
      ATENA_RETURN_IF_ERROR(ReadOp(&op));
      ops->push_back(std::move(op));
    }
    return Status::OK();
  }

  /// Reads a matrix whose shape must equal `expected`'s.
  Status ReadMatrixLike(const Matrix& expected, const char* what,
                        Matrix* out) {
    int rows = 0, cols = 0;
    ATENA_RETURN_IF_ERROR(Read(&rows, what));
    ATENA_RETURN_IF_ERROR(Read(&cols, what));
    if (rows != expected.rows() || cols != expected.cols()) {
      return Fail(std::string(what) + " shape " + std::to_string(rows) + "x" +
                  std::to_string(cols) + " does not match network " +
                  expected.ShapeString());
    }
    Matrix m(rows, cols);
    for (double& v : m.data()) {
      ATENA_RETURN_IF_ERROR(Read(&v, what));
    }
    *out = std::move(m);
    return Status::OK();
  }

  std::istream& stream() { return in_; }
  const std::string& source() const { return source_; }

 private:
  std::istream& in_;
  const std::string& source_;
  size_t limit_;
};

}  // namespace

std::string EncodeCheckpointPayload(const std::vector<Parameter*>& params,
                                    const TrainingCheckpoint& ckpt) {
  std::ostringstream out;
  out << std::setprecision(std::numeric_limits<double>::max_digits10);

  out << "steps_done " << ckpt.steps_done << "\n";
  out << "updates_done " << ckpt.updates_done << "\n";
  out << "trainer_rng ";
  EncodeRng(out, ckpt.trainer_rng);
  out << "\n";
  out << "episodes " << ckpt.episodes << "\n";
  out << "best_reward " << ckpt.best_episode_reward << "\n";

  out << "curve " << ckpt.curve.size() << "\n";
  for (const CurvePoint& point : ckpt.curve) {
    out << point.step << " " << point.mean_episode_reward << "\n";
  }
  out << "recent " << ckpt.recent_episode_rewards.size() << "\n";
  for (size_t i = 0; i < ckpt.recent_episode_rewards.size(); ++i) {
    out << ckpt.recent_episode_rewards[i]
        << (i + 1 == ckpt.recent_episode_rewards.size() ? "" : " ");
  }
  out << "\n";
  EncodeOps(out, "best_ops", ckpt.best_episode_ops);

  out << "actors " << ckpt.actors.size() << "\n";
  for (const ActorCheckpoint& actor : ckpt.actors) {
    out << "actor " << actor.env_seed << " ";
    EncodeRng(out, actor.env_rng);
    out << " " << actor.episode_reward << "\n";
    EncodeOps(out, "ops", actor.episode_ops);
  }

  out << "adam_step " << ckpt.adam_step << "\n";
  out << "adam_moments " << ckpt.adam_m.size() << "\n";
  for (size_t k = 0; k < ckpt.adam_m.size(); ++k) {
    EncodeMatrix(out, ckpt.adam_m[k]);
    EncodeMatrix(out, ckpt.adam_v[k]);
  }

  // Guard recovery state travels only once an anomaly has occurred (see
  // TrainingCheckpoint::guard).
  if (!ckpt.guard.IsDefault()) {
    out << "guard " << ckpt.guard.retries_used << " " << ckpt.guard.lr_scale
        << " " << ckpt.guard.last_good_update << " "
        << ckpt.guard.events_logged << "\n";
  }

  // The network weights, embedded as a verbatim ATENA-NN v2 block.
  out << "params\n" << SerializeParameters(params);
  out << "end\n";
  return out.str();
}

Status DecodeCheckpointPayload(const std::string& payload,
                               const std::vector<Parameter*>& params,
                               const std::string& source,
                               TrainingCheckpoint* out) {
  std::istringstream in(payload);
  PayloadReader reader(in, source, payload.size());
  TrainingCheckpoint ckpt;

  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("steps_done"));
  ATENA_RETURN_IF_ERROR(reader.Read(&ckpt.steps_done, "steps_done"));
  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("updates_done"));
  ATENA_RETURN_IF_ERROR(reader.Read(&ckpt.updates_done, "updates_done"));
  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("trainer_rng"));
  ATENA_RETURN_IF_ERROR(reader.ReadRng(&ckpt.trainer_rng));
  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("episodes"));
  ATENA_RETURN_IF_ERROR(reader.Read(&ckpt.episodes, "episodes"));
  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("best_reward"));
  ATENA_RETURN_IF_ERROR(
      reader.Read(&ckpt.best_episode_reward, "best_reward"));

  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("curve"));
  int64_t curve_count = 0;
  ATENA_RETURN_IF_ERROR(reader.ReadCount(&curve_count, "curve"));
  for (int64_t i = 0; i < curve_count; ++i) {
    CurvePoint point;
    ATENA_RETURN_IF_ERROR(reader.Read(&point.step, "curve step"));
    ATENA_RETURN_IF_ERROR(
        reader.Read(&point.mean_episode_reward, "curve reward"));
    ckpt.curve.push_back(point);
  }

  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("recent"));
  int64_t recent_count = 0;
  ATENA_RETURN_IF_ERROR(reader.ReadCount(&recent_count, "recent"));
  for (int64_t i = 0; i < recent_count; ++i) {
    double reward = 0.0;
    ATENA_RETURN_IF_ERROR(reader.Read(&reward, "recent reward"));
    ckpt.recent_episode_rewards.push_back(reward);
  }

  ATENA_RETURN_IF_ERROR(reader.ReadOps("best_ops", &ckpt.best_episode_ops));

  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("actors"));
  int64_t actor_count = 0;
  ATENA_RETURN_IF_ERROR(reader.ReadCount(&actor_count, "actors"));
  for (int64_t i = 0; i < actor_count; ++i) {
    ActorCheckpoint actor;
    ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("actor"));
    ATENA_RETURN_IF_ERROR(reader.Read(&actor.env_seed, "actor env seed"));
    ATENA_RETURN_IF_ERROR(reader.ReadRng(&actor.env_rng));
    ATENA_RETURN_IF_ERROR(
        reader.Read(&actor.episode_reward, "actor episode reward"));
    ATENA_RETURN_IF_ERROR(reader.ReadOps("ops", &actor.episode_ops));
    ckpt.actors.push_back(std::move(actor));
  }

  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("adam_step"));
  ATENA_RETURN_IF_ERROR(reader.Read(&ckpt.adam_step, "adam_step"));
  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("adam_moments"));
  int64_t moment_count = 0;
  ATENA_RETURN_IF_ERROR(reader.ReadCount(&moment_count, "adam_moments"));
  if (moment_count != 0 &&
      moment_count != static_cast<int64_t>(params.size())) {
    return reader.Fail("adam moment count " + std::to_string(moment_count) +
                       " does not match network parameter count " +
                       std::to_string(params.size()));
  }
  for (int64_t k = 0; k < moment_count; ++k) {
    Matrix m, v;
    const Matrix& expected = params[static_cast<size_t>(k)]->value;
    ATENA_RETURN_IF_ERROR(reader.ReadMatrixLike(expected, "adam m", &m));
    ATENA_RETURN_IF_ERROR(reader.ReadMatrixLike(expected, "adam v", &v));
    ckpt.adam_m.push_back(std::move(m));
    ckpt.adam_v.push_back(std::move(v));
  }

  // The optional guard section sits between the Adam moments and the
  // parameter block; its absence means "no guard event ever happened".
  std::string section;
  ATENA_RETURN_IF_ERROR(reader.Read(&section, "section keyword"));
  if (section == "guard") {
    ATENA_RETURN_IF_ERROR(
        reader.Read(&ckpt.guard.retries_used, "guard retries"));
    ATENA_RETURN_IF_ERROR(reader.Read(&ckpt.guard.lr_scale, "guard lr scale"));
    ATENA_RETURN_IF_ERROR(
        reader.Read(&ckpt.guard.last_good_update, "guard last good update"));
    ATENA_RETURN_IF_ERROR(
        reader.Read(&ckpt.guard.events_logged, "guard events"));
    if (ckpt.guard.retries_used < 0 || ckpt.guard.last_good_update < 0 ||
        ckpt.guard.events_logged < 0 || !(ckpt.guard.lr_scale > 0.0) ||
        !std::isfinite(ckpt.guard.lr_scale)) {
      return reader.Fail("implausible guard state");
    }
    ATENA_RETURN_IF_ERROR(reader.Read(&section, "section keyword"));
  }
  if (section != "params") {
    return reader.Fail("expected section 'params', got '" + section + "'");
  }
  ATENA_RETURN_IF_ERROR(
      ParseParametersInto(params, reader.stream(), source,
                          &ckpt.param_values));
  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("end"));

  *out = std::move(ckpt);
  return Status::OK();
}

Status SaveTrainingCheckpoint(const std::string& path,
                              const std::vector<Parameter*>& params,
                              const TrainingCheckpoint& ckpt) {
  const std::string payload = EncodeCheckpointPayload(params, ckpt);
  const std::string fresh = path + ".new";
  const std::string prev = path + ".prev";
  // The new snapshot becomes durable under a side name first; only then is
  // the current snapshot demoted to `.prev` and the new one promoted. A
  // crash at any point leaves at least one fully-written snapshot among
  // {path, .prev, .new}.
  ATENA_RETURN_IF_ERROR(WriteChecksummedFile(fresh, kCkptMagic, payload));
  if (FileExists(path)) {
    if (std::rename(path.c_str(), prev.c_str()) != 0) {
      return Status::IOError(RenameError(path, prev));
    }
  }
  if (std::rename(fresh.c_str(), path.c_str()) != 0) {
    return Status::IOError(RenameError(fresh, path));
  }
  return Status::OK();
}

Status LoadTrainingCheckpoint(const std::string& path,
                              const std::vector<Parameter*>& params,
                              TrainingCheckpoint* out,
                              CheckpointLoadInfo* info) {
  auto try_load = [&](const std::string& p,
                      TrainingCheckpoint* ckpt) -> Status {
    std::string payload;
    ATENA_RETURN_IF_ERROR(ReadChecksummedFile(p, kCkptMagic, &payload));
    return DecodeCheckpointPayload(payload, params, p, ckpt);
  };

  TrainingCheckpoint staged;
  Status primary = try_load(path, &staged);
  if (primary.ok()) {
    if (info) *info = CheckpointLoadInfo{};
    *out = std::move(staged);
    return Status::OK();
  }
  const std::string prev = path + ".prev";
  Status fallback = try_load(prev, &staged);
  if (fallback.ok()) {
    if (info) {
      info->recovered_from_prev = true;
      info->primary_error = primary.ToString();
    }
    *out = std::move(staged);
    return Status::OK();
  }
  return Status::IOError("no loadable checkpoint: '" + path + "' (" +
                         primary.ToString() + "); '" + prev + "' (" +
                         fallback.ToString() + ")");
}

bool OpExecutableOn(const Table& table, const EdaOperation& op) {
  const int num_cols = table.num_columns();
  switch (op.type) {
    case OpType::kBack:
      return true;
    case OpType::kFilter:
      return op.filter.column >= 0 && op.filter.column < num_cols;
    case OpType::kGroup:
      return op.group.group_column >= 0 && op.group.group_column < num_cols &&
             op.group.agg_column >= -1 && op.group.agg_column < num_cols;
  }
  return false;
}

Status LoadPolicyParameters(const std::string& path,
                            const std::vector<Parameter*>& params) {
  std::string text;
  const Status read = ReadFileToString(path, &text);
  if (read.ok() && text.rfind("ATENA-NN", 0) == 0) {
    std::istringstream in(text);
    std::vector<Matrix> staged;
    Status parsed = ParseParametersInto(params, in, path, &staged);
    if (!parsed.ok()) {
      if (parsed.code() == StatusCode::kFailedPrecondition) {
        // Architecture mismatch: the container was trained with a network
        // this policy was not constructed as. Keep the shape detail and
        // say what to fix.
        return Status::FailedPrecondition(
            "'" + path + "': " + parsed.message() +
            " — the policy must be constructed with the hidden sizes and "
            "dataset schema the container was trained with");
      }
      return parsed;
    }
    for (size_t k = 0; k < staged.size(); ++k) {
      params[k]->value = std::move(staged[k]);
    }
    return Status::OK();
  }

  // Anything else is treated as an ATENA-CKPT container; the loader
  // recovers from `<path>.prev` when the primary is corrupt, and its
  // decoder validates the embedded parameter block against `params`.
  const bool looks_like_ckpt =
      read.ok() && text.rfind("ATENA-CKPT", 0) == 0;
  TrainingCheckpoint ckpt;
  Status loaded = LoadTrainingCheckpoint(path, params, &ckpt);
  if (!loaded.ok()) {
    if (!looks_like_ckpt) {
      return Status::InvalidArgument(
          "'" + path + "' is neither an ATENA-NN parameter file nor an "
          "ATENA-CKPT training checkpoint: " +
          (read.ok() ? loaded.ToString() : read.ToString()));
    }
    return loaded;
  }
  // ParseParametersInto (inside the decoder) guarantees one staged matrix
  // per network parameter, already shape-checked.
  for (size_t k = 0; k < params.size(); ++k) {
    params[k]->value = std::move(ckpt.param_values[k]);
  }
  return Status::OK();
}

}  // namespace atena
