#include "rl/policy.h"

namespace atena {

int64_t Policy::NumParameters() {
  int64_t total = 0;
  for (Parameter* p : Parameters()) {
    total += static_cast<int64_t>(p->value.size());
  }
  return total;
}

StepOutcome ApplyAction(EdaEnvironment* env, const ActionRecord& action) {
  if (action.is_concrete) {
    return env->StepOperation(action.concrete);
  }
  return env->Step(action.structured);
}

}  // namespace atena
