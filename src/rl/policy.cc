#include "rl/policy.h"

#include "common/logging.h"

namespace atena {

std::vector<PolicyStep> Policy::ActBatch(const Matrix& observations,
                                         Rng* rng) {
  std::vector<PolicyStep> steps;
  steps.reserve(static_cast<size_t>(observations.rows()));
  std::vector<double> row(static_cast<size_t>(observations.cols()));
  for (int r = 0; r < observations.rows(); ++r) {
    const double* src = observations.RowPtr(r);
    row.assign(src, src + observations.cols());
    steps.push_back(rng != nullptr ? Act(row, rng) : ActGreedy(row));
  }
  return steps;
}

std::vector<PolicyStep> Policy::ActBatch(const Matrix& observations,
                                         const std::vector<Rng*>& rngs) {
  ATENA_CHECK(static_cast<int>(rngs.size()) == observations.rows())
      << "ActBatch needs one Rng slot per observation row ("
      << rngs.size() << " vs " << observations.rows() << ")";
  std::vector<PolicyStep> steps;
  steps.reserve(static_cast<size_t>(observations.rows()));
  std::vector<double> row(static_cast<size_t>(observations.cols()));
  for (int r = 0; r < observations.rows(); ++r) {
    const double* src = observations.RowPtr(r);
    row.assign(src, src + observations.cols());
    Rng* rng = rngs[static_cast<size_t>(r)];
    steps.push_back(rng != nullptr ? Act(row, rng) : ActGreedy(row));
    // Per the overload's contract, entropy is not part of the result.
    steps.back().entropy = 0.0;
  }
  return steps;
}

int64_t Policy::NumParameters() {
  int64_t total = 0;
  for (Parameter* p : Parameters()) {
    total += static_cast<int64_t>(p->value.size());
  }
  return total;
}

StepOutcome ApplyAction(EdaEnvironment* env, const ActionRecord& action) {
  if (action.is_concrete) {
    return env->StepOperation(action.concrete);
  }
  return env->Step(action.structured);
}

Result<StepOutcome> TryApplyAction(EdaEnvironment* env,
                                   const ActionRecord& action) {
  if (action.is_concrete) {
    return env->TryStepOperation(action.concrete);
  }
  return env->TryStep(action.structured);
}

}  // namespace atena
