#include "rl/policy.h"

namespace atena {

std::vector<PolicyStep> Policy::ActBatch(const Matrix& observations,
                                         Rng* rng) {
  std::vector<PolicyStep> steps;
  steps.reserve(static_cast<size_t>(observations.rows()));
  std::vector<double> row(static_cast<size_t>(observations.cols()));
  for (int r = 0; r < observations.rows(); ++r) {
    const double* src = observations.RowPtr(r);
    row.assign(src, src + observations.cols());
    steps.push_back(rng != nullptr ? Act(row, rng) : ActGreedy(row));
  }
  return steps;
}

int64_t Policy::NumParameters() {
  int64_t total = 0;
  for (Parameter* p : Parameters()) {
    total += static_cast<int64_t>(p->value.size());
  }
  return total;
}

StepOutcome ApplyAction(EdaEnvironment* env, const ActionRecord& action) {
  if (action.is_concrete) {
    return env->StepOperation(action.concrete);
  }
  return env->Step(action.structured);
}

}  // namespace atena
