#ifndef ATENA_RL_TRAINER_H_
#define ATENA_RL_TRAINER_H_

#include <functional>
#include <string>
#include <vector>

#include "eda/environment.h"
#include "rl/guardrails.h"
#include "rl/policy.h"

namespace atena {

/// Hyper-parameters of the synchronous advantage actor-critic trainer with
/// PPO clipping (the paper trains with A3C enhanced with PPO, §6.1; our
/// substrate is synchronous — see DESIGN.md substitution #2).
struct TrainerOptions {
  int total_steps = 12000;
  int rollout_length = 192;   // environment steps per policy update
  int minibatch_size = 64;
  int epochs_per_update = 4;
  double gamma = 0.99;
  double gae_lambda = 0.95;
  double clip_epsilon = 0.2;
  /// Entropy-regularization bonus (paper §5) keeping the policy from
  /// premature convergence.
  double entropy_coef = 0.02;
  double value_coef = 0.5;
  double learning_rate = 3e-3;
  double max_grad_norm = 5.0;
  /// Episodes rolled out with the final policy after training; the best of
  /// them competes with the best training episode for notebook extraction.
  /// With scaled-down budgets the converged policy's episodes are far more
  /// representative than lucky exploration noise from early training.
  int final_eval_episodes = 16;
  uint64_t seed = 31337;

  /// Worker threads for environment stepping in ParallelPpoTrainer
  /// (DESIGN.md §9). 0 = auto: one thread per actor, capped at the hardware
  /// concurrency. Explicit values are clamped to [1, actor count] — more
  /// threads than actors can never be used; they may exceed the core count
  /// (useful for interleaving tests on small machines). The thread count
  /// NEVER changes training output: stepping results are committed in fixed
  /// actor order and every floating-point reduction runs serially, so any
  /// value here (including across a checkpoint resume) is bit-identical to
  /// num_threads = 1.
  int num_threads = 0;

  /// Durable crash-safe checkpointing (rl/checkpoint.h, DESIGN.md §8).
  /// Empty disables. When set, Train() writes rotating `<path>` +
  /// `<path>.prev` ATENA-CKPT v1 snapshots at update boundaries and on
  /// cooperative interruption (RequestTrainingStop), so a crash, OOM-kill
  /// or Ctrl-C loses at most `checkpoint_every_updates` updates of work.
  std::string checkpoint_path;
  /// Snapshot cadence in policy updates; values < 1 checkpoint only on
  /// interruption.
  int checkpoint_every_updates = 1;
  /// When true (and checkpoint_path is set), Train() first restores the
  /// newest readable snapshot — falling back to `.prev` with a logged
  /// warning when the primary is truncated or corrupt — and continues
  /// bit-identically to the run that wrote it: same learning curve, same
  /// TrainingResult as if it had never been interrupted. Missing
  /// checkpoints (or ones for a different env/policy configuration) log a
  /// warning and start fresh.
  bool resume = false;

  /// Training guardrails (rl/guardrails.h, DESIGN.md §10): anomaly
  /// detection with automatic rollback-to-last-good, learning-rate backoff
  /// and a bounded retry budget. Off by default (guardrails.enabled);
  /// when enabled and no anomaly fires, training output stays
  /// byte-identical to guardrails-off.
  GuardrailOptions guardrails;
};

/// Cooperative interruption for long training runs. RequestTrainingStop is
/// async-signal-safe (it only sets a sig_atomic_t flag), so examples
/// install it directly as a SIGINT handler. Trainers poll the flag between
/// lockstep ticks and at update boundaries, so stop latency is bounded by
/// one tick (one step per actor), not one full rollout. On stop they flush
/// a final checkpoint (when configured) capturing the last update
/// boundary, mark the TrainingResult as interrupted, and return the
/// partial result; resuming from that checkpoint continues bit-identically.
/// Train() clears the flag when it starts.
void RequestTrainingStop();
bool TrainingStopRequested();
void ClearTrainingStopRequest();

/// One (step, mean recent episode reward) sample of the learning curve —
/// what Figure 5 plots.
struct CurvePoint {
  int step = 0;
  double mean_episode_reward = 0.0;
};

struct TrainingResult {
  std::vector<CurvePoint> curve;
  /// The operation sequence of the best episode seen during training —
  /// ATENA extracts the generated notebook from it (paper §3).
  std::vector<EdaOperation> best_episode_ops;
  double best_episode_reward = 0.0;
  double final_mean_reward = 0.0;
  int episodes = 0;
  /// True when training stopped early at an update boundary because of
  /// RequestTrainingStop(). The result holds the partial progress (no final
  /// greedy evaluation pass is run); resuming from the flushed checkpoint
  /// completes the run bit-identically.
  bool interrupted = false;
  /// OK unless the training guard exhausted its retry budget, in which
  /// case this carries the kResourceExhausted status naming the trigger
  /// (the weights are still rolled back to the last good update, and no
  /// final evaluation pass is run).
  Status guard_status;
  /// Guardrail accounting for the run (zeroes when guardrails are off).
  GuardrailSummary guard;
};

/// Synchronous PPO/A2C trainer over one EDA environment. Collects
/// fixed-length rollouts, computes GAE(λ) advantages, and runs several
/// clipped-surrogate epochs per rollout.
///
/// Since the trainer-core unification this is a thin facade: Train() runs a
/// 1-actor ParallelPpoTrainer (rl/parallel_trainer.h) over the shared
/// RolloutBuffer/PpoUpdater machinery in rl/rollout.h, and produces output
/// bit-identical to the historical standalone implementation.
class PpoTrainer {
 public:
  PpoTrainer(EdaEnvironment* env, Policy* policy, TrainerOptions options);

  /// Optional progress callback, invoked once per rollout.
  void SetProgressCallback(std::function<void(const CurvePoint&)> callback) {
    progress_ = std::move(callback);
  }

  TrainingResult Train();

 private:
  EdaEnvironment* env_;
  Policy* policy_;
  TrainerOptions options_;
  std::function<void(const CurvePoint&)> progress_;
};

}  // namespace atena

#endif  // ATENA_RL_TRAINER_H_
