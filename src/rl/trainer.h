#ifndef ATENA_RL_TRAINER_H_
#define ATENA_RL_TRAINER_H_

#include <functional>
#include <vector>

#include "eda/environment.h"
#include "rl/policy.h"

namespace atena {

/// Hyper-parameters of the synchronous advantage actor-critic trainer with
/// PPO clipping (the paper trains with A3C enhanced with PPO, §6.1; our
/// substrate is synchronous — see DESIGN.md substitution #2).
struct TrainerOptions {
  int total_steps = 12000;
  int rollout_length = 192;   // environment steps per policy update
  int minibatch_size = 64;
  int epochs_per_update = 4;
  double gamma = 0.99;
  double gae_lambda = 0.95;
  double clip_epsilon = 0.2;
  /// Entropy-regularization bonus (paper §5) keeping the policy from
  /// premature convergence.
  double entropy_coef = 0.02;
  double value_coef = 0.5;
  double learning_rate = 3e-3;
  double max_grad_norm = 5.0;
  /// Episodes rolled out with the final policy after training; the best of
  /// them competes with the best training episode for notebook extraction.
  /// With scaled-down budgets the converged policy's episodes are far more
  /// representative than lucky exploration noise from early training.
  int final_eval_episodes = 16;
  uint64_t seed = 31337;
};

/// One (step, mean recent episode reward) sample of the learning curve —
/// what Figure 5 plots.
struct CurvePoint {
  int step = 0;
  double mean_episode_reward = 0.0;
};

struct TrainingResult {
  std::vector<CurvePoint> curve;
  /// The operation sequence of the best episode seen during training —
  /// ATENA extracts the generated notebook from it (paper §3).
  std::vector<EdaOperation> best_episode_ops;
  double best_episode_reward = 0.0;
  double final_mean_reward = 0.0;
  int episodes = 0;
};

/// Synchronous PPO/A2C trainer over one EDA environment. Collects
/// fixed-length rollouts, computes GAE(λ) advantages, and runs several
/// clipped-surrogate epochs per rollout.
///
/// Since the trainer-core unification this is a thin facade: Train() runs a
/// 1-actor ParallelPpoTrainer (rl/parallel_trainer.h) over the shared
/// RolloutBuffer/PpoUpdater machinery in rl/rollout.h, and produces output
/// bit-identical to the historical standalone implementation.
class PpoTrainer {
 public:
  PpoTrainer(EdaEnvironment* env, Policy* policy, TrainerOptions options);

  /// Optional progress callback, invoked once per rollout.
  void SetProgressCallback(std::function<void(const CurvePoint&)> callback) {
    progress_ = std::move(callback);
  }

  TrainingResult Train();

 private:
  EdaEnvironment* env_;
  Policy* policy_;
  TrainerOptions options_;
  std::function<void(const CurvePoint&)> progress_;
};

}  // namespace atena

#endif  // ATENA_RL_TRAINER_H_
