#ifndef ATENA_RL_PARALLEL_TRAINER_H_
#define ATENA_RL_PARALLEL_TRAINER_H_

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "rl/checkpoint.h"
#include "rl/rollout.h"
#include "rl/trainer.h"

namespace atena {

/// Synchronous multi-actor variant of PpoTrainer — the substrate's
/// equivalent of the paper's A3C training (§6.1): several environment
/// instances over the same dataset (different exploration seeds) advance
/// in lockstep, and every policy update learns from the interleaved
/// experience of all actors. Unlike true A3C the updates are synchronous
/// (DESIGN.md substitution #2), which keeps runs deterministic.
///
/// Each lockstep tick issues exactly one batched Policy::ActBatch over all
/// actors' observations — one network forward per tick regardless of the
/// actor count — and then steps every actor's environment (FILTER/GROUP
/// execution, display diffing, compound reward) concurrently on a
/// persistent worker pool (TrainerOptions::num_threads, DESIGN.md §9).
/// Training output is bit-identical at any thread count: each actor owns
/// its environment and Rng stream, step outcomes land in index-addressed
/// slots, and the commit into the RolloutBuffer — with every floating-point
/// reduction (episode rewards, best-episode tracking, reward windows) —
/// runs serially in fixed actor order. The 1-actor instance IS the
/// single-env trainer: PpoTrainer delegates here, and its training output
/// is bit-identical to the historical per-step implementation.
///
/// All environments must expose identical observation and action spaces
/// (same dataset/config); each should carry its own seed, and each must
/// have its own RewardSignal instance (a shared stateful signal would be
/// stepped concurrently). The display cache is shared across actors — it
/// is internally thread-safe and a hit is bit-identical to a recompute.
class ParallelPpoTrainer {
 public:
  ParallelPpoTrainer(std::vector<EdaEnvironment*> envs, Policy* policy,
                     TrainerOptions options);

  void SetProgressCallback(std::function<void(const CurvePoint&)> callback) {
    progress_ = std::move(callback);
  }

  /// The resolved stepping concurrency (options.num_threads with 0 = auto,
  /// clamped to the actor count).
  int num_threads() const { return num_threads_; }

  TrainingResult Train();

 private:
  /// Per-actor in-flight episode state.
  struct ActorState {
    std::vector<double> observation;
    double episode_reward = 0.0;
    std::vector<EdaOperation> episode_ops;
  };

  /// Builds the full ATENA-CKPT v1 snapshot of the current trainer state.
  /// Valid only at update boundaries (the rollout buffer must be empty).
  TrainingCheckpoint BuildCheckpoint(const std::vector<ActorState>& actors,
                                     int steps_done, int updates_done) const;

  /// BuildCheckpoint plus a copy of the live network weights into
  /// `param_values` — the in-memory last-good snapshot the training guard
  /// rolls back to (a disk checkpoint reads live weights at save time, so
  /// the plain snapshot alone cannot undo a poisoned update).
  TrainingCheckpoint BuildGuardSnapshot(const std::vector<ActorState>& actors,
                                        int steps_done,
                                        int updates_done) const;

  /// Commits a fully validated snapshot into the trainer, policy, optimizer
  /// and environments (replaying each actor's in-flight episode, which
  /// consumes no randomness, then restoring the env Rng streams). Copies —
  /// never moves — from `ckpt`, so the guard can roll back to the same
  /// snapshot repeatedly. `ckpt.param_values` must be populated.
  void ApplyCheckpoint(const TrainingCheckpoint& ckpt,
                       std::vector<ActorState>* actors, int* steps_done,
                       int* updates_done);

  /// Durably writes `ckpt` (rotating `<path>` + `.prev`). Failures are
  /// logged as warnings — a broken disk should not kill hours of training
  /// that may still finish in memory.
  void WriteCheckpoint(const TrainingCheckpoint& ckpt) const;

  /// Restores the newest readable snapshot (falling back to `.prev` with a
  /// logged warning) into the trainer, policy, optimizer and environments.
  /// Environments are rebuilt by replaying each actor's in-flight episode
  /// operations (which consumes no randomness) and then restoring the env
  /// Rng streams. Returns false — leaving everything in its fresh-start
  /// state — when no snapshot exists or none can be applied.
  bool TryResumeFromCheckpoint(std::vector<ActorState>* actors,
                               int* steps_done, int* updates_done);

  std::vector<EdaEnvironment*> envs_;
  Policy* policy_;
  TrainerOptions options_;
  Rng rng_;
  RolloutBuffer buffer_;
  PpoUpdater updater_;
  /// Anomaly watchdog (DESIGN.md §10); null unless guardrails are enabled.
  /// Runs serially after each update, so it never affects bit-identity
  /// across thread counts.
  std::unique_ptr<TrainingGuard> guard_;
  std::function<void(const CurvePoint&)> progress_;

  /// Resolved stepping concurrency; the pool exists only when > 1.
  int num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;

  TrainingResult result_;
  std::vector<double> recent_episode_rewards_;
};

}  // namespace atena

#endif  // ATENA_RL_PARALLEL_TRAINER_H_
