#ifndef ATENA_RL_PARALLEL_TRAINER_H_
#define ATENA_RL_PARALLEL_TRAINER_H_

#include <vector>

#include "rl/rollout.h"
#include "rl/trainer.h"

namespace atena {

/// Synchronous multi-actor variant of PpoTrainer — the substrate's
/// equivalent of the paper's A3C training (§6.1): several environment
/// instances over the same dataset (different exploration seeds) advance
/// in lockstep, and every policy update learns from the interleaved
/// experience of all actors. Unlike true A3C the updates are synchronous
/// (DESIGN.md substitution #2), which keeps runs deterministic.
///
/// Each lockstep tick issues exactly one batched Policy::ActBatch over all
/// actors' observations — one network forward per tick regardless of the
/// actor count. The 1-actor instance IS the single-env trainer: PpoTrainer
/// delegates here, and its training output is bit-identical to the
/// historical per-step implementation.
///
/// All environments must expose identical observation and action spaces
/// (same dataset/config); each should carry its own seed.
class ParallelPpoTrainer {
 public:
  ParallelPpoTrainer(std::vector<EdaEnvironment*> envs, Policy* policy,
                     TrainerOptions options);

  void SetProgressCallback(std::function<void(const CurvePoint&)> callback) {
    progress_ = std::move(callback);
  }

  TrainingResult Train();

 private:
  /// Per-actor in-flight episode state.
  struct ActorState {
    std::vector<double> observation;
    double episode_reward = 0.0;
    std::vector<EdaOperation> episode_ops;
  };

  /// Writes a rotating ATENA-CKPT v1 snapshot to options_.checkpoint_path.
  /// Failures are logged as warnings — a broken disk should not kill hours
  /// of training that may still finish in memory.
  void SaveCheckpointNow(const std::vector<ActorState>& actors,
                         int steps_done, int updates_done);

  /// Restores the newest readable snapshot (falling back to `.prev` with a
  /// logged warning) into the trainer, policy, optimizer and environments.
  /// Environments are rebuilt by replaying each actor's in-flight episode
  /// operations (which consumes no randomness) and then restoring the env
  /// Rng streams. Returns false — leaving everything in its fresh-start
  /// state — when no snapshot exists or none can be applied.
  bool TryResumeFromCheckpoint(std::vector<ActorState>* actors,
                               int* steps_done, int* updates_done);

  std::vector<EdaEnvironment*> envs_;
  Policy* policy_;
  TrainerOptions options_;
  Rng rng_;
  RolloutBuffer buffer_;
  PpoUpdater updater_;
  std::function<void(const CurvePoint&)> progress_;

  TrainingResult result_;
  std::vector<double> recent_episode_rewards_;
};

}  // namespace atena

#endif  // ATENA_RL_PARALLEL_TRAINER_H_
