#ifndef ATENA_RL_ROLLOUT_H_
#define ATENA_RL_ROLLOUT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "eda/session.h"
#include "nn/optimizer.h"
#include "rl/guardrails.h"
#include "rl/policy.h"

namespace atena {

/// One recorded environment step — the unit of experience shared by the
/// single-env and multi-actor trainers.
struct Transition {
  std::vector<double> observation;
  ActionRecord action;
  double log_prob = 0.0;
  double value = 0.0;
  double reward = 0.0;
  bool episode_end = false;
};

/// A transition with its GAE(λ) advantage and discounted value target,
/// ready for the PPO epochs. `transition` borrows from the RolloutBuffer
/// that produced it and stays valid until the buffer's next Clear().
struct Sample {
  const Transition* transition = nullptr;
  double advantage = 0.0;
  double target = 0.0;
};

/// Experience storage for a fixed set of actor streams. Stream `e` holds a
/// contiguous slice of actor `e`'s trajectory (possibly spanning several
/// episode boundaries); the single-env trainer is simply the 1-stream case.
class RolloutBuffer {
 public:
  explicit RolloutBuffer(size_t num_streams) : streams_(num_streams) {}

  size_t num_streams() const { return streams_.size(); }
  const std::vector<Transition>& stream(size_t e) const { return streams_[e]; }

  /// Drops all transitions but keeps the stream count (and capacity).
  void Clear();

  void Add(size_t stream, Transition transition) {
    streams_[stream].push_back(std::move(transition));
  }

  /// True when stream `e` ends mid-episode, i.e. its GAE tail must be
  /// bootstrapped from the critic's value of the actor's next observation.
  bool StreamNeedsBootstrap(size_t e) const {
    return !streams_[e].empty() && !streams_[e].back().episode_end;
  }

  /// Runs GAE(λ) independently over each stream and returns the merged
  /// samples in stream order (empty streams are skipped).
  /// `bootstrap_values[e]` is the critic value used for stream `e`'s tail;
  /// it is ignored unless StreamNeedsBootstrap(e).
  std::vector<Sample> ComputeGae(const std::vector<double>& bootstrap_values,
                                 double gamma, double lambda) const;

 private:
  std::vector<std::vector<Transition>> streams_;
};

/// The PPO learning core shared by PpoTrainer and ParallelPpoTrainer:
/// normalizes advantages across the merged batch, then runs several
/// shuffled clipped-surrogate epochs, backpropagating through the policy
/// and stepping the owned Adam optimizer.
class PpoUpdater {
 public:
  struct Options {
    int minibatch_size = 64;
    int epochs_per_update = 4;
    double clip_epsilon = 0.2;
    double entropy_coef = 0.02;
    double value_coef = 0.5;
    double learning_rate = 3e-3;
    double max_grad_norm = 5.0;
  };

  PpoUpdater(Policy* policy, Options options);

  /// Runs one full PPO update over `samples`. `rng` drives the per-epoch
  /// shuffles (and nothing else). No-op on an empty batch. The returned
  /// statistics are pure observations of the update (rl/guardrails.h) —
  /// computing them changes no weight, gradient or Rng byte.
  UpdateStats Update(std::vector<Sample> samples, Rng* rng);

  /// Scales the effective Adam learning rate to `scale` times the
  /// configured Options::learning_rate. Used by training guardrails to
  /// back off after a rollback; idempotent (absolute, not cumulative).
  void SetLearningRateScale(double scale);

  /// The owned Adam optimizer — exposed so training checkpoints
  /// (rl/checkpoint.h) can capture and restore its moments/step, which a
  /// bare weight file silently loses.
  Adam* optimizer() { return &optimizer_; }
  const Adam* optimizer() const { return &optimizer_; }

 private:
  Policy* policy_;
  Options options_;
  Adam optimizer_;
  /// Raw Update-call counter fed to the fault-injection hook. Counts
  /// calls, not successful updates, so a retried update is a fresh index
  /// and a persistent fault must keep injecting to keep failing.
  int64_t update_calls_ = 0;
};

/// Fault-injection hook for guardrail tests. When set, it is consulted at
/// the start of every PpoUpdater::Update with the raw call index (0-based,
/// monotonic per updater) and the returned fault is injected into that
/// update: kNanLoss poisons the reported policy loss, kInfGradient writes
/// inf into one gradient slot before clipping (zeroing the whole step),
/// kEntropyCollapse forces the reported mean entropy to zero. Pass an
/// empty function to clear. Not thread-safe; tests only.
using PpoFaultHook = std::function<GuardFault(int64_t update_call)>;
void SetPpoFaultInjectionHookForTesting(PpoFaultHook hook);

/// Runs one full episode of `policy` on `env` (Boltzmann sampling, or
/// per-segment argmax when `greedy`), and returns the resulting notebook.
/// Used for evaluating trained policies without a trainer — e.g. after
/// loading transferred weights. The episode's cumulative reward is written
/// to `total_reward` when non-null.
EdaNotebook RolloutNotebook(EdaEnvironment* env, Policy* policy, Rng* rng,
                            std::string generator,
                            double* total_reward = nullptr,
                            bool greedy = false);

}  // namespace atena

#endif  // ATENA_RL_ROLLOUT_H_
