#ifndef ATENA_RL_ROLLOUT_H_
#define ATENA_RL_ROLLOUT_H_

#include "eda/session.h"
#include "rl/policy.h"

namespace atena {

/// Runs one full episode of `policy` on `env` (Boltzmann sampling, or
/// per-segment argmax when `greedy`), and returns the resulting notebook.
/// Used for evaluating trained policies without a trainer — e.g. after
/// loading transferred weights. The episode's cumulative reward is written
/// to `total_reward` when non-null.
EdaNotebook RolloutNotebook(EdaEnvironment* env, Policy* policy, Rng* rng,
                            std::string generator,
                            double* total_reward = nullptr,
                            bool greedy = false);

}  // namespace atena

#endif  // ATENA_RL_ROLLOUT_H_
