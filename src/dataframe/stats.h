#ifndef ATENA_DATAFRAME_STATS_H_
#define ATENA_DATAFRAME_STATS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dataframe/table.h"
#include "dataframe/value.h"

namespace atena {

/// Descriptive statistics of one column over a row selection — exactly the
/// three per-attribute features the observation vector encodes (paper §4.1):
/// values' entropy, number of distinct values, number of nulls.
struct ColumnStats {
  double entropy = 0.0;            // natural-log Shannon entropy
  double normalized_entropy = 0.0; // entropy / log(distinct), in [0,1]
  int64_t distinct = 0;            // distinct non-null values
  int64_t nulls = 0;               // null cells in the selection
  int64_t count = 0;               // selection size
};

/// Computes ColumnStats of `column` restricted to `rows`.
ColumnStats ComputeColumnStats(const Column& column,
                               const std::vector<int32_t>& rows);

/// Value histogram over a row selection, keyed by Column::CellKey (nulls are
/// excluded). Feeds the KL-divergence interestingness reward.
std::unordered_map<int64_t, double> ValueHistogram(
    const Column& column, const std::vector<int32_t>& rows);

/// Histogram over an arbitrary list of doubles, keyed by bit pattern;
/// used for KL over aggregated display columns.
std::unordered_map<int64_t, double> DoubleHistogram(
    const std::vector<double>& values);

/// One token of a column and its frequency in the selection.
struct TokenFreq {
  Value token;
  int64_t count = 0;
};

/// Distinct non-null tokens of `column` within `rows`, sorted by descending
/// frequency (ties broken by value order for determinism). This is the
/// token list the logarithmic filter-term binning operates on (paper §5).
std::vector<TokenFreq> TokenFrequencies(const Column& column,
                                        const std::vector<int32_t>& rows);

}  // namespace atena

#endif  // ATENA_DATAFRAME_STATS_H_
