#include "dataframe/value.h"

#include "common/string_utils.h"

namespace atena {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat64:
      return "float64";
    case DataType::kString:
      return "string";
  }
  return "?";
}

bool Value::ToDouble(double* out) const {
  if (is_int()) {
    *out = static_cast<double>(as_int());
    return true;
  }
  if (is_double()) {
    *out = as_double();
    return true;
  }
  return false;
}

std::string Value::ToString() const {
  if (is_null()) return "null";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) return FormatDouble(as_double());
  return as_string();
}

}  // namespace atena
