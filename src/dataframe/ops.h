#ifndef ATENA_DATAFRAME_OPS_H_
#define ATENA_DATAFRAME_OPS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dataframe/table.h"

namespace atena {

class ThreadPool;

/// Comparison operators supported by FILTER (paper §4.1: "=, >, contains").
enum class CompareOp {
  kEq,
  kNeq,
  kGt,
  kGe,
  kLt,
  kLe,
  kContains,
  kStartsWith,
  kEndsWith,
};

/// Symbol used in notebook rendering ("==", "contains", ...).
const char* CompareOpSymbol(CompareOp op);
constexpr int kNumCompareOps = 9;

/// Aggregation functions supported by GROUP (paper §4.1: SUM, MAX, COUNT,
/// AVG; we add MIN for symmetry).
enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };
const char* AggFuncName(AggFunc func);
constexpr int kNumAggFuncs = 5;

/// Total order over Values used for deterministic display sorting:
/// null < numeric (by value) < string (lexicographic).
bool ValueLess(const Value& a, const Value& b);

/// Selects the rows of `rows` whose `column` cell matches `op term`.
///
/// Semantics follow Pandas-on-strings behaviour the paper relied on:
///  * Null cells never match any predicate.
///  * Ordering comparisons require a numeric column and numeric term.
///  * kContains/kStartsWith/kEndsWith require a string column; kEq/kNeq on a
///    string column compare whole tokens.
///  * kEq/kNeq between numeric column and numeric term compare by value
///    (int 5 == double 5.0).
///
/// Returns OutOfRange when the table has more rows than an int32 row index
/// can address.
///
/// Runs on the chunked selection-vector kernel (dataframe/kernels.h):
/// zone-map chunk skipping plus branch-light per-chunk scans, bit-identical
/// to the retained ScalarFilterRows reference.
Result<std::vector<int32_t>> FilterRows(const Table& table,
                                        const std::vector<int32_t>& rows,
                                        int column, CompareOp op,
                                        const Value& term);

/// A group-by request: one or more key columns plus a single aggregation.
/// `agg_column` is ignored for kCount (which counts rows per group).
struct GroupSpec {
  std::vector<int> group_columns;
  AggFunc agg = AggFunc::kCount;
  int agg_column = -1;
};

/// One result group: its key values (one per group column), member row ids,
/// and the aggregate (NaN-free; `agg_valid` is false when no non-null input
/// reached the aggregator).
struct Group {
  std::vector<Value> keys;
  std::vector<int32_t> rows;
  double aggregate = 0.0;
  bool agg_valid = false;
};

/// The grouped result display: groups sorted deterministically by key.
struct GroupedResult {
  GroupSpec spec;
  std::vector<std::string> key_names;
  std::string agg_name;  // e.g. "AVG(departure_delay)"
  std::vector<Group> groups;

  /// Group sizes as doubles (for the observation encoder's mean/variance).
  std::vector<double> GroupSizes() const;

  /// Materializes the grouped display as a table (key columns + one
  /// aggregate column), for rendering.
  Result<TablePtr> ToTable(const Table& source) const;
};

/// Groups `rows` of `table` by `spec.group_columns` and aggregates.
/// Requirements: at least one group column; numeric agg column for
/// SUM/MIN/MAX/AVG; all column indices valid.
///
/// Runs on the partitioned group-by kernel (dataframe/kernels.h). When
/// `pool` is given, partitions build their hash tables in parallel and are
/// merged serially in fixed partition order — results are bit-identical at
/// any thread count (and to pool == nullptr).
Result<GroupedResult> GroupAggregate(const Table& table,
                                     const std::vector<int32_t>& rows,
                                     const GroupSpec& spec,
                                     ThreadPool* pool = nullptr);

/// Validates that a table of `num_rows` rows is fully addressable by int32
/// row ids; `what` prefixes the OutOfRange message. Lets callers (and the
/// boundary tests) probe the limit without materializing a huge table.
Status ValidateInt32RowRange(int64_t num_rows, const std::string& what);

/// Identity row selection [0, num_rows). Returns OutOfRange — instead of
/// the previous fatal check — when a row id would overflow int32.
Result<std::vector<int32_t>> AllRows(const Table& table);

/// AllRows for a bare row count (no table required).
Result<std::vector<int32_t>> AllRowsForCount(int64_t num_rows);

}  // namespace atena

#endif  // ATENA_DATAFRAME_OPS_H_
