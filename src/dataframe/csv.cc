#include "dataframe/csv.h"

#include "common/file_io.h"
#include "common/string_utils.h"

namespace atena {

namespace {

/// Splits one logical CSV record (already newline-free except inside quotes)
/// into fields, honoring double-quote quoting.
std::vector<std::string> ParseCsvRecord(std::string_view line, char delim) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

bool NeedsQuoting(std::string_view field, char delim) {
  for (char c : field) {
    if (c == delim || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendCsvField(std::string* out, std::string_view field, char delim) {
  if (!NeedsQuoting(field, delim)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Result<TablePtr> ReadCsvString(const std::string& text, std::string table_name,
                               const CsvOptions& options) {
  // Split into logical records, keeping newlines inside quotes. Each
  // record remembers the 1-based source line it starts on (quoted fields
  // may span lines, so record index and line number can diverge) — error
  // messages point at the file, not at an internal index.
  std::vector<std::string> records;
  std::vector<int64_t> record_lines;
  {
    std::string current;
    bool in_quotes = false;
    int64_t line = 1;
    int64_t record_start_line = 1;
    for (char c : text) {
      if (c == '"') in_quotes = !in_quotes;
      if ((c == '\n') && !in_quotes) {
        if (!current.empty() && current.back() == '\r') current.pop_back();
        records.push_back(std::move(current));
        record_lines.push_back(record_start_line);
        current.clear();
        ++line;
        record_start_line = line;
      } else {
        if (c == '\n') ++line;
        current += c;
      }
    }
    if (!current.empty()) {
      if (current.back() == '\r') current.pop_back();
      records.push_back(std::move(current));
      record_lines.push_back(record_start_line);
    }
  }
  if (records.empty()) {
    return Status::InvalidArgument("CSV: empty input");
  }

  std::vector<std::string> header =
      ParseCsvRecord(records[0], options.delimiter);
  const size_t num_cols = header.size();
  std::vector<std::vector<std::string>> rows;
  rows.reserve(records.size() - 1);
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i].empty()) continue;  // skip blank lines
    auto fields = ParseCsvRecord(records[i], options.delimiter);
    if (fields.size() != num_cols) {
      return Status::InvalidArgument(
          "CSV: line " + std::to_string(record_lines[i]) + " has " +
          std::to_string(fields.size()) + " columns, expected " +
          std::to_string(num_cols) + " (from the header)");
    }
    rows.push_back(std::move(fields));
  }

  // Type inference per column.
  auto is_null_cell = [&](const std::string& cell) {
    return options.treat_empty_as_null && StripWhitespace(cell).empty();
  };
  std::vector<DataType> types(num_cols, DataType::kInt64);
  const int64_t inspect =
      options.inference_rows == 0
          ? static_cast<int64_t>(rows.size())
          : std::min<int64_t>(options.inference_rows,
                              static_cast<int64_t>(rows.size()));
  for (size_t c = 0; c < num_cols; ++c) {
    bool all_int = true, all_num = true, any_value = false;
    for (int64_t r = 0; r < inspect; ++r) {
      const std::string& cell = rows[static_cast<size_t>(r)][c];
      if (is_null_cell(cell)) continue;
      any_value = true;
      int64_t iv;
      double dv;
      if (!ParseInt64(cell, &iv)) all_int = false;
      if (!ParseDouble(cell, &dv)) all_num = false;
      if (!all_num) break;
    }
    if (!any_value || !all_num) {
      types[c] = DataType::kString;
    } else {
      types[c] = all_int ? DataType::kInt64 : DataType::kFloat64;
    }
  }

  // Build columns. Cells outside the inference window that fail to parse
  // under the inferred numeric type are treated as nulls (logged as a data
  // quality matter is overkill here; they are rare in practice).
  std::vector<ColumnBuilder> builders;
  builders.reserve(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    builders.emplace_back(std::string(StripWhitespace(header[c])), types[c]);
  }
  for (const auto& row : rows) {
    for (size_t c = 0; c < num_cols; ++c) {
      const std::string& cell = row[c];
      if (is_null_cell(cell)) {
        builders[c].AppendNull();
        continue;
      }
      switch (types[c]) {
        case DataType::kInt64: {
          int64_t v;
          if (ParseInt64(cell, &v)) {
            ATENA_RETURN_IF_ERROR(builders[c].AppendInt(v));
          } else {
            builders[c].AppendNull();
          }
          break;
        }
        case DataType::kFloat64: {
          double v;
          if (ParseDouble(cell, &v)) {
            ATENA_RETURN_IF_ERROR(builders[c].AppendDouble(v));
          } else {
            builders[c].AppendNull();
          }
          break;
        }
        case DataType::kString:
          ATENA_RETURN_IF_ERROR(builders[c].AppendString(cell));
          break;
      }
    }
  }
  std::vector<ColumnPtr> columns;
  columns.reserve(num_cols);
  for (auto& b : builders) columns.push_back(b.Finish());
  return Table::Make(std::move(table_name), std::move(columns));
}

Result<TablePtr> ReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  std::string text;
  ATENA_RETURN_IF_ERROR(ReadFileToString(path, &text));
  // Table name: basename without extension.
  std::string name = path;
  size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return ReadCsvString(std::move(text), std::move(name), options);
}

std::string WriteCsvString(const Table& table, const CsvOptions& options) {
  std::string out;
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out.push_back(options.delimiter);
    AppendCsvField(&out, table.column_name(c), options.delimiter);
  }
  out.push_back('\n');
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out.push_back(options.delimiter);
      const Column& col = *table.column(c);
      if (col.IsNull(r)) continue;  // empty field = null
      AppendCsvField(&out, col.GetValue(r).ToString(), options.delimiter);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  // Atomic temp-file + rename write (common/file_io.h): an interrupted or
  // failed export can never truncate or corrupt an existing file at `path`,
  // and every error carries strerror(errno) detail.
  return AtomicWriteFile(path, WriteCsvString(table, options));
}

}  // namespace atena
