#include "dataframe/describe.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dataframe/ops.h"
#include "dataframe/stats.h"

namespace atena {

Result<std::vector<int32_t>> SortRows(const Table& table,
                                      std::vector<int32_t> rows, int column,
                                      bool ascending) {
  if (column < 0 || column >= table.num_columns()) {
    return Status::OutOfRange("SortRows: column " + std::to_string(column));
  }
  const Column& col = *table.column(column);
  auto less = [&col](int32_t a, int32_t b) {
    const bool na = col.IsNull(a), nb = col.IsNull(b);
    if (na != nb) return na;  // nulls first
    if (na && nb) return false;
    if (col.type() == DataType::kString) {
      return col.GetString(a) < col.GetString(b);
    }
    return col.AsDoubleOrNan(a) < col.AsDoubleOrNan(b);
  };
  if (ascending) {
    std::stable_sort(rows.begin(), rows.end(), less);
  } else {
    std::stable_sort(rows.begin(), rows.end(),
                     [&less](int32_t a, int32_t b) { return less(b, a); });
  }
  return rows;
}

Result<std::vector<int32_t>> TopKRows(const Table& table,
                                      const std::vector<int32_t>& rows,
                                      int column, int k, bool largest) {
  if (column < 0 || column >= table.num_columns()) {
    return Status::OutOfRange("TopKRows: column " + std::to_string(column));
  }
  const Column& col = *table.column(column);
  if (col.type() == DataType::kString) {
    return Status::TypeMismatch("TopKRows over string column '" + col.name() +
                                "'");
  }
  std::vector<int32_t> candidates;
  candidates.reserve(rows.size());
  for (int32_t r : rows) {
    if (!col.IsNull(r)) candidates.push_back(r);
  }
  const size_t take = std::min<size_t>(static_cast<size_t>(std::max(0, k)),
                                       candidates.size());
  auto better = [&col, largest](int32_t a, int32_t b) {
    const double va = col.AsDoubleOrNan(a), vb = col.AsDoubleOrNan(b);
    if (va != vb) return largest ? va > vb : va < vb;
    return a < b;
  };
  std::partial_sort(candidates.begin(),
                    candidates.begin() + static_cast<long>(take),
                    candidates.end(), better);
  candidates.resize(take);
  return candidates;
}

Result<TablePtr> DescribeTable(const Table& table) {
  ColumnBuilder name("column", DataType::kString);
  ColumnBuilder type("type", DataType::kString);
  ColumnBuilder count("count", DataType::kInt64);
  ColumnBuilder nulls("nulls", DataType::kInt64);
  ColumnBuilder distinct("distinct", DataType::kInt64);
  ColumnBuilder min_col("min", DataType::kFloat64);
  ColumnBuilder max_col("max", DataType::kFloat64);
  ColumnBuilder mean_col("mean", DataType::kFloat64);
  ColumnBuilder top("top_value", DataType::kString);
  ColumnBuilder top_count("top_count", DataType::kInt64);

  ATENA_ASSIGN_OR_RETURN(const std::vector<int32_t> rows, AllRows(table));
  for (int c = 0; c < table.num_columns(); ++c) {
    const Column& col = *table.column(c);
    ColumnStats stats = ComputeColumnStats(col, rows);
    ATENA_RETURN_IF_ERROR(name.AppendString(col.name()));
    ATENA_RETURN_IF_ERROR(type.AppendString(DataTypeName(col.type())));
    ATENA_RETURN_IF_ERROR(count.AppendInt(stats.count - stats.nulls));
    ATENA_RETURN_IF_ERROR(nulls.AppendInt(stats.nulls));
    ATENA_RETURN_IF_ERROR(distinct.AppendInt(stats.distinct));

    if (col.type() == DataType::kString) {
      min_col.AppendNull();
      max_col.AppendNull();
      mean_col.AppendNull();
    } else {
      double lo = std::numeric_limits<double>::infinity();
      double hi = -lo;
      double sum = 0.0;
      int64_t n = 0;
      for (int32_t r : rows) {
        if (col.IsNull(r)) continue;
        const double v = col.AsDoubleOrNan(r);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        sum += v;
        ++n;
      }
      if (n == 0) {
        min_col.AppendNull();
        max_col.AppendNull();
        mean_col.AppendNull();
      } else {
        ATENA_RETURN_IF_ERROR(min_col.AppendDouble(lo));
        ATENA_RETURN_IF_ERROR(max_col.AppendDouble(hi));
        ATENA_RETURN_IF_ERROR(
            mean_col.AppendDouble(sum / static_cast<double>(n)));
      }
    }

    auto tokens = TokenFrequencies(col, rows);
    if (tokens.empty()) {
      top.AppendNull();
      top_count.AppendNull();
    } else {
      ATENA_RETURN_IF_ERROR(top.AppendString(tokens[0].token.ToString()));
      ATENA_RETURN_IF_ERROR(top_count.AppendInt(tokens[0].count));
    }
  }

  std::vector<ColumnPtr> columns;
  for (ColumnBuilder* b : {&name, &type, &count, &nulls, &distinct, &min_col,
                           &max_col, &mean_col, &top, &top_count}) {
    columns.push_back(b->Finish());
  }
  return Table::Make(table.name() + "/describe", std::move(columns));
}

}  // namespace atena
