#include "dataframe/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/string_utils.h"

namespace atena {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNeq:
      return "!=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kContains:
      return "contains";
    case CompareOp::kStartsWith:
      return "startswith";
    case CompareOp::kEndsWith:
      return "endswith";
  }
  return "?";
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

bool ValueLess(const Value& a, const Value& b) {
  auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_int() || v.is_double()) return 1;
    return 2;
  };
  int ra = rank(a), rb = rank(b);
  if (ra != rb) return ra < rb;
  if (ra == 0) return false;  // both null
  if (ra == 1) {
    double da = 0, db = 0;
    a.ToDouble(&da);
    b.ToDouble(&db);
    return da < db;
  }
  return a.as_string() < b.as_string();
}

namespace {

bool IsNumericType(DataType type) {
  return type == DataType::kInt64 || type == DataType::kFloat64;
}

bool IsOrderingOp(CompareOp op) {
  return op == CompareOp::kGt || op == CompareOp::kGe ||
         op == CompareOp::kLt || op == CompareOp::kLe;
}

bool IsStringOp(CompareOp op) {
  return op == CompareOp::kContains || op == CompareOp::kStartsWith ||
         op == CompareOp::kEndsWith;
}

}  // namespace

Result<std::vector<int32_t>> FilterRows(const Table& table,
                                        const std::vector<int32_t>& rows,
                                        int column, CompareOp op,
                                        const Value& term) {
  if (column < 0 || column >= table.num_columns()) {
    return Status::OutOfRange("FilterRows: column index " +
                              std::to_string(column));
  }
  const Column& col = *table.column(column);
  if (term.is_null()) {
    return Status::InvalidArgument("FilterRows: null filter term");
  }

  std::vector<int32_t> out;

  if (IsOrderingOp(op)) {
    if (!IsNumericType(col.type())) {
      return Status::TypeMismatch("ordering filter on non-numeric column '" +
                                  col.name() + "'");
    }
    double threshold = 0.0;
    if (!term.ToDouble(&threshold)) {
      return Status::TypeMismatch("ordering filter with non-numeric term");
    }
    for (int32_t r : rows) {
      if (col.IsNull(r)) continue;
      double v = col.AsDoubleOrNan(r);
      bool keep = false;
      switch (op) {
        case CompareOp::kGt:
          keep = v > threshold;
          break;
        case CompareOp::kGe:
          keep = v >= threshold;
          break;
        case CompareOp::kLt:
          keep = v < threshold;
          break;
        case CompareOp::kLe:
          keep = v <= threshold;
          break;
        default:
          break;
      }
      if (keep) out.push_back(r);
    }
    return out;
  }

  if (IsStringOp(op)) {
    if (col.type() != DataType::kString) {
      return Status::TypeMismatch("substring filter on non-string column '" +
                                  col.name() + "'");
    }
    if (!term.is_string()) {
      return Status::TypeMismatch("substring filter with non-string term");
    }
    const std::string& needle = term.as_string();
    for (int32_t r : rows) {
      if (col.IsNull(r)) continue;
      std::string_view cell = col.GetString(r);
      bool keep = false;
      switch (op) {
        case CompareOp::kContains:
          keep = Contains(cell, needle);
          break;
        case CompareOp::kStartsWith:
          keep = StartsWith(cell, needle);
          break;
        case CompareOp::kEndsWith:
          keep = EndsWith(cell, needle);
          break;
        default:
          break;
      }
      if (keep) out.push_back(r);
    }
    return out;
  }

  // Equality family.
  const bool want_equal = (op == CompareOp::kEq);
  if (col.type() == DataType::kString) {
    if (!term.is_string()) {
      return Status::TypeMismatch("equality filter on string column '" +
                                  col.name() + "' with non-string term");
    }
    // Token filters compare dictionary codes: one lookup, then integer scans.
    int32_t code = col.FindCode(term.as_string());
    for (int32_t r : rows) {
      if (col.IsNull(r)) continue;
      bool equal = (code >= 0 && col.GetCode(r) == code);
      if (equal == want_equal) out.push_back(r);
    }
    return out;
  }

  double target = 0.0;
  if (!term.ToDouble(&target)) {
    return Status::TypeMismatch("equality filter on numeric column '" +
                                col.name() + "' with non-numeric term");
  }
  for (int32_t r : rows) {
    if (col.IsNull(r)) continue;
    bool equal = (col.AsDoubleOrNan(r) == target);
    if (equal == want_equal) out.push_back(r);
  }
  return out;
}

std::vector<double> GroupedResult::GroupSizes() const {
  std::vector<double> sizes;
  sizes.reserve(groups.size());
  for (const auto& g : groups) {
    sizes.push_back(static_cast<double>(g.rows.size()));
  }
  return sizes;
}

Result<TablePtr> GroupedResult::ToTable(const Table& source) const {
  std::vector<ColumnPtr> columns;
  for (size_t k = 0; k < key_names.size(); ++k) {
    DataType type = source.column(spec.group_columns[k])->type();
    ColumnBuilder builder(key_names[k], type);
    for (const auto& g : groups) {
      ATENA_RETURN_IF_ERROR(builder.AppendValue(g.keys[k]));
    }
    columns.push_back(builder.Finish());
  }
  ColumnBuilder agg_builder(agg_name, DataType::kFloat64);
  for (const auto& g : groups) {
    if (g.agg_valid) {
      ATENA_RETURN_IF_ERROR(agg_builder.AppendDouble(g.aggregate));
    } else {
      agg_builder.AppendNull();
    }
  }
  columns.push_back(agg_builder.Finish());
  return Table::Make(source.name() + "/grouped", std::move(columns));
}

Result<GroupedResult> GroupAggregate(const Table& table,
                                     const std::vector<int32_t>& rows,
                                     const GroupSpec& spec) {
  if (spec.group_columns.empty()) {
    return Status::InvalidArgument("GroupAggregate: no group columns");
  }
  for (int c : spec.group_columns) {
    if (c < 0 || c >= table.num_columns()) {
      return Status::OutOfRange("GroupAggregate: group column " +
                                std::to_string(c));
    }
  }
  const bool needs_agg_column = spec.agg != AggFunc::kCount;
  if (needs_agg_column) {
    if (spec.agg_column < 0 || spec.agg_column >= table.num_columns()) {
      return Status::OutOfRange("GroupAggregate: agg column " +
                                std::to_string(spec.agg_column));
    }
    if (!IsNumericType(table.column(spec.agg_column)->type())) {
      return Status::TypeMismatch(
          std::string(AggFuncName(spec.agg)) + " over non-numeric column '" +
          table.column(spec.agg_column)->name() + "'");
    }
  }

  // Assign rows to groups via composite cell keys. std::map keeps the
  // grouping deterministic; the final ordering is by boxed key values.
  std::map<std::vector<int64_t>, size_t> index;
  GroupedResult result;
  result.spec = spec;
  for (int c : spec.group_columns) {
    result.key_names.push_back(table.column(c)->name());
  }
  if (spec.agg == AggFunc::kCount) {
    result.agg_name = "COUNT(*)";
  } else {
    result.agg_name = std::string(AggFuncName(spec.agg)) + "(" +
                      table.column(spec.agg_column)->name() + ")";
  }

  std::vector<int64_t> key(spec.group_columns.size());
  for (int32_t r : rows) {
    for (size_t k = 0; k < spec.group_columns.size(); ++k) {
      key[k] = table.column(spec.group_columns[k])->CellKey(r);
    }
    auto [it, inserted] = index.emplace(key, result.groups.size());
    if (inserted) {
      Group g;
      g.keys.reserve(spec.group_columns.size());
      for (int c : spec.group_columns) {
        g.keys.push_back(table.column(c)->GetValue(r));
      }
      result.groups.push_back(std::move(g));
    }
    result.groups[it->second].rows.push_back(r);
  }

  // Aggregate each group.
  for (auto& g : result.groups) {
    if (spec.agg == AggFunc::kCount) {
      g.aggregate = static_cast<double>(g.rows.size());
      g.agg_valid = true;
      continue;
    }
    const Column& agg_col = *table.column(spec.agg_column);
    double acc = 0.0;
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    int64_t n = 0;
    for (int32_t r : g.rows) {
      if (agg_col.IsNull(r)) continue;
      double v = agg_col.AsDoubleOrNan(r);
      acc += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
      ++n;
    }
    g.agg_valid = (n > 0);
    if (!g.agg_valid) continue;
    switch (spec.agg) {
      case AggFunc::kSum:
        g.aggregate = acc;
        break;
      case AggFunc::kMin:
        g.aggregate = mn;
        break;
      case AggFunc::kMax:
        g.aggregate = mx;
        break;
      case AggFunc::kAvg:
        g.aggregate = acc / static_cast<double>(n);
        break;
      case AggFunc::kCount:
        break;
    }
  }

  // Deterministic display order: sort by key values.
  std::sort(result.groups.begin(), result.groups.end(),
            [](const Group& a, const Group& b) {
              for (size_t i = 0; i < a.keys.size() && i < b.keys.size(); ++i) {
                if (ValueLess(a.keys[i], b.keys[i])) return true;
                if (ValueLess(b.keys[i], a.keys[i])) return false;
              }
              return false;
            });
  return result;
}

std::vector<int32_t> AllRows(const Table& table) {
  std::vector<int32_t> rows(static_cast<size_t>(table.num_rows()));
  for (int64_t i = 0; i < table.num_rows(); ++i) {
    rows[static_cast<size_t>(i)] = static_cast<int32_t>(i);
  }
  return rows;
}

}  // namespace atena
