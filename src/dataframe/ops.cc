#include "dataframe/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dataframe/kernels.h"

namespace atena {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNeq:
      return "!=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kContains:
      return "contains";
    case CompareOp::kStartsWith:
      return "startswith";
    case CompareOp::kEndsWith:
      return "endswith";
  }
  return "?";
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

bool ValueLess(const Value& a, const Value& b) {
  auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_int() || v.is_double()) return 1;
    return 2;
  };
  int ra = rank(a), rb = rank(b);
  if (ra != rb) return ra < rb;
  if (ra == 0) return false;  // both null
  if (ra == 1) {
    double da = 0, db = 0;
    a.ToDouble(&da);
    b.ToDouble(&db);
    return da < db;
  }
  return a.as_string() < b.as_string();
}

Result<std::vector<int32_t>> FilterRows(const Table& table,
                                        const std::vector<int32_t>& rows,
                                        int column, CompareOp op,
                                        const Value& term) {
  return FilterRowsKernel(table, rows, column, op, term);
}

std::vector<double> GroupedResult::GroupSizes() const {
  std::vector<double> sizes;
  sizes.reserve(groups.size());
  for (const auto& g : groups) {
    sizes.push_back(static_cast<double>(g.rows.size()));
  }
  return sizes;
}

Result<TablePtr> GroupedResult::ToTable(const Table& source) const {
  std::vector<ColumnPtr> columns;
  for (size_t k = 0; k < key_names.size(); ++k) {
    DataType type = source.column(spec.group_columns[k])->type();
    ColumnBuilder builder(key_names[k], type);
    for (const auto& g : groups) {
      ATENA_RETURN_IF_ERROR(builder.AppendValue(g.keys[k]));
    }
    columns.push_back(builder.Finish());
  }
  ColumnBuilder agg_builder(agg_name, DataType::kFloat64);
  for (const auto& g : groups) {
    if (g.agg_valid) {
      ATENA_RETURN_IF_ERROR(agg_builder.AppendDouble(g.aggregate));
    } else {
      agg_builder.AppendNull();
    }
  }
  columns.push_back(agg_builder.Finish());
  return Table::Make(source.name() + "/grouped", std::move(columns));
}

Result<GroupedResult> GroupAggregate(const Table& table,
                                     const std::vector<int32_t>& rows,
                                     const GroupSpec& spec, ThreadPool* pool) {
  return GroupAggregateKernel(table, rows, spec, pool);
}

Status ValidateInt32RowRange(int64_t num_rows, const std::string& what) {
  if (num_rows > std::numeric_limits<int32_t>::max()) {
    return Status::OutOfRange(what + " exceeds int32 row-index range (" +
                              std::to_string(num_rows) + " rows)");
  }
  return Status::OK();
}

Result<std::vector<int32_t>> AllRowsForCount(int64_t num_rows) {
  ATENA_RETURN_IF_ERROR(ValidateInt32RowRange(num_rows, "AllRows: row count"));
  std::vector<int32_t> rows(static_cast<size_t>(num_rows));
  for (int64_t i = 0; i < num_rows; ++i) {
    rows[static_cast<size_t>(i)] = static_cast<int32_t>(i);
  }
  return rows;
}

Result<std::vector<int32_t>> AllRows(const Table& table) {
  ATENA_RETURN_IF_ERROR(ValidateInt32RowRange(
      table.num_rows(), "AllRows: table '" + table.name() + "'"));
  return AllRowsForCount(table.num_rows());
}

}  // namespace atena
