#include "dataframe/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/hashing.h"
#include "common/logging.h"
#include "common/string_utils.h"

namespace atena {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNeq:
      return "!=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kContains:
      return "contains";
    case CompareOp::kStartsWith:
      return "startswith";
    case CompareOp::kEndsWith:
      return "endswith";
  }
  return "?";
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

bool ValueLess(const Value& a, const Value& b) {
  auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_int() || v.is_double()) return 1;
    return 2;
  };
  int ra = rank(a), rb = rank(b);
  if (ra != rb) return ra < rb;
  if (ra == 0) return false;  // both null
  if (ra == 1) {
    double da = 0, db = 0;
    a.ToDouble(&da);
    b.ToDouble(&db);
    return da < db;
  }
  return a.as_string() < b.as_string();
}

namespace {

bool IsNumericType(DataType type) {
  return type == DataType::kInt64 || type == DataType::kFloat64;
}

bool IsOrderingOp(CompareOp op) {
  return op == CompareOp::kGt || op == CompareOp::kGe ||
         op == CompareOp::kLt || op == CompareOp::kLe;
}

bool IsStringOp(CompareOp op) {
  return op == CompareOp::kContains || op == CompareOp::kStartsWith ||
         op == CompareOp::kEndsWith;
}

/// Scans `rows` keeping the non-null rows that satisfy `pred`. The
/// predicate is a template parameter so each operator gets its own tight
/// loop (no per-row switch). The output is reserved from a selectivity
/// estimate over a small stride sample, so typical filters do zero or one
/// reallocation instead of log2(n).
template <typename Pred>
std::vector<int32_t> ScanRows(const Column& col,
                              const std::vector<int32_t>& rows, Pred pred) {
  std::vector<int32_t> out;
  const size_t n = rows.size();
  constexpr size_t kSample = 128;
  if (n <= 4 * kSample) {
    out.reserve(n);
  } else {
    const size_t stride = n / kSample;
    size_t matched = 0;
    for (size_t i = 0; i < kSample; ++i) {
      const int32_t r = rows[i * stride];
      if (!col.IsNull(r) && pred(r)) ++matched;
    }
    // +1 smoothing and a 1/4 head-room margin; a bad estimate only costs a
    // realloc, never correctness.
    const size_t estimate = (n * (matched + 1)) / (kSample + 1);
    out.reserve(std::min(n, estimate + estimate / 4 + 16));
  }
  for (const int32_t r : rows) {
    if (!col.IsNull(r) && pred(r)) out.push_back(r);
  }
  return out;
}

}  // namespace

Result<std::vector<int32_t>> FilterRows(const Table& table,
                                        const std::vector<int32_t>& rows,
                                        int column, CompareOp op,
                                        const Value& term) {
  if (column < 0 || column >= table.num_columns()) {
    return Status::OutOfRange("FilterRows: column index " +
                              std::to_string(column));
  }
  if (table.num_rows() > std::numeric_limits<int32_t>::max()) {
    return Status::OutOfRange(
        "FilterRows: table exceeds int32 row-index range (" +
        std::to_string(table.num_rows()) + " rows)");
  }
  const Column& col = *table.column(column);
  if (term.is_null()) {
    return Status::InvalidArgument("FilterRows: null filter term");
  }

  if (IsOrderingOp(op)) {
    if (!IsNumericType(col.type())) {
      return Status::TypeMismatch("ordering filter on non-numeric column '" +
                                  col.name() + "'");
    }
    double threshold = 0.0;
    if (!term.ToDouble(&threshold)) {
      return Status::TypeMismatch("ordering filter with non-numeric term");
    }
    switch (op) {
      case CompareOp::kGt:
        return ScanRows(col, rows, [&](int32_t r) {
          return col.AsDoubleOrNan(r) > threshold;
        });
      case CompareOp::kGe:
        return ScanRows(col, rows, [&](int32_t r) {
          return col.AsDoubleOrNan(r) >= threshold;
        });
      case CompareOp::kLt:
        return ScanRows(col, rows, [&](int32_t r) {
          return col.AsDoubleOrNan(r) < threshold;
        });
      default:
        return ScanRows(col, rows, [&](int32_t r) {
          return col.AsDoubleOrNan(r) <= threshold;
        });
    }
  }

  if (IsStringOp(op)) {
    if (col.type() != DataType::kString) {
      return Status::TypeMismatch("substring filter on non-string column '" +
                                  col.name() + "'");
    }
    if (!term.is_string()) {
      return Status::TypeMismatch("substring filter with non-string term");
    }
    const std::string& needle = term.as_string();
    switch (op) {
      case CompareOp::kContains:
        return ScanRows(col, rows, [&](int32_t r) {
          return Contains(col.GetString(r), needle);
        });
      case CompareOp::kStartsWith:
        return ScanRows(col, rows, [&](int32_t r) {
          return StartsWith(col.GetString(r), needle);
        });
      default:
        return ScanRows(col, rows, [&](int32_t r) {
          return EndsWith(col.GetString(r), needle);
        });
    }
  }

  // Equality family.
  const bool want_equal = (op == CompareOp::kEq);
  if (col.type() == DataType::kString) {
    if (!term.is_string()) {
      return Status::TypeMismatch("equality filter on string column '" +
                                  col.name() + "' with non-string term");
    }
    // Token filters compare dictionary codes: one lookup, then integer scans.
    const int32_t code = col.FindCode(term.as_string());
    if (want_equal) {
      if (code < 0) return std::vector<int32_t>{};  // absent term matches none
      return ScanRows(col, rows,
                      [&](int32_t r) { return col.GetCode(r) == code; });
    }
    if (code < 0) {
      // Absent term: every non-null row differs from it.
      return ScanRows(col, rows, [](int32_t) { return true; });
    }
    return ScanRows(col, rows,
                    [&](int32_t r) { return col.GetCode(r) != code; });
  }

  double target = 0.0;
  if (!term.ToDouble(&target)) {
    return Status::TypeMismatch("equality filter on numeric column '" +
                                col.name() + "' with non-numeric term");
  }
  if (want_equal) {
    return ScanRows(col, rows,
                    [&](int32_t r) { return col.AsDoubleOrNan(r) == target; });
  }
  return ScanRows(col, rows,
                  [&](int32_t r) { return col.AsDoubleOrNan(r) != target; });
}

std::vector<double> GroupedResult::GroupSizes() const {
  std::vector<double> sizes;
  sizes.reserve(groups.size());
  for (const auto& g : groups) {
    sizes.push_back(static_cast<double>(g.rows.size()));
  }
  return sizes;
}

Result<TablePtr> GroupedResult::ToTable(const Table& source) const {
  std::vector<ColumnPtr> columns;
  for (size_t k = 0; k < key_names.size(); ++k) {
    DataType type = source.column(spec.group_columns[k])->type();
    ColumnBuilder builder(key_names[k], type);
    for (const auto& g : groups) {
      ATENA_RETURN_IF_ERROR(builder.AppendValue(g.keys[k]));
    }
    columns.push_back(builder.Finish());
  }
  ColumnBuilder agg_builder(agg_name, DataType::kFloat64);
  for (const auto& g : groups) {
    if (g.agg_valid) {
      ATENA_RETURN_IF_ERROR(agg_builder.AppendDouble(g.aggregate));
    } else {
      agg_builder.AppendNull();
    }
  }
  columns.push_back(agg_builder.Finish());
  return Table::Make(source.name() + "/grouped", std::move(columns));
}

Result<GroupedResult> GroupAggregate(const Table& table,
                                     const std::vector<int32_t>& rows,
                                     const GroupSpec& spec) {
  if (spec.group_columns.empty()) {
    return Status::InvalidArgument("GroupAggregate: no group columns");
  }
  for (int c : spec.group_columns) {
    if (c < 0 || c >= table.num_columns()) {
      return Status::OutOfRange("GroupAggregate: group column " +
                                std::to_string(c));
    }
  }
  const bool needs_agg_column = spec.agg != AggFunc::kCount;
  if (needs_agg_column) {
    if (spec.agg_column < 0 || spec.agg_column >= table.num_columns()) {
      return Status::OutOfRange("GroupAggregate: agg column " +
                                std::to_string(spec.agg_column));
    }
    if (!IsNumericType(table.column(spec.agg_column)->type())) {
      return Status::TypeMismatch(
          std::string(AggFuncName(spec.agg)) + " over non-numeric column '" +
          table.column(spec.agg_column)->name() + "'");
    }
  }

  GroupedResult result;
  result.spec = spec;
  for (int c : spec.group_columns) {
    result.key_names.push_back(table.column(c)->name());
  }
  if (spec.agg == AggFunc::kCount) {
    result.agg_name = "COUNT(*)";
  } else {
    result.agg_name = std::string(AggFuncName(spec.agg)) + "(" +
                      table.column(spec.agg_column)->name() + ")";
  }

  // Row→group assignment via an open-addressing hash table on a combined
  // 64-bit key hash. Slots store the owning group index; exact composite
  // keys live contiguously in `key_storage` (k int64s per group) and are
  // compared on every probe hit, so hash collisions across distinct keys
  // chain to new slots instead of merging groups. Group discovery order is
  // row-encounter order, as with the previous std::map implementation, and
  // the deterministic final ordering comes from the sort below.
  const size_t k = spec.group_columns.size();
  const Column* key_cols_buf[4];
  std::vector<const Column*> key_cols_vec;
  const Column** key_cols = key_cols_buf;
  if (k > 4) {
    key_cols_vec.resize(k);
    key_cols = key_cols_vec.data();
  }
  for (size_t i = 0; i < k; ++i) {
    key_cols[i] = table.column(spec.group_columns[i]).get();
  }

  size_t capacity = 64;
  std::vector<int32_t> slot_group(capacity, -1);
  std::vector<uint64_t> slot_hash(capacity);
  std::vector<uint64_t> group_hash;   // per group, for cheap rehashing
  std::vector<int64_t> key_storage;   // k cell keys per group, flat
  size_t mask = capacity - 1;

  auto grow = [&]() {
    capacity *= 2;
    mask = capacity - 1;
    slot_group.assign(capacity, -1);
    slot_hash.assign(capacity, 0);
    for (size_t g = 0; g < group_hash.size(); ++g) {
      size_t pos = static_cast<size_t>(group_hash[g]) & mask;
      while (slot_group[pos] >= 0) pos = (pos + 1) & mask;
      slot_group[pos] = static_cast<int32_t>(g);
      slot_hash[pos] = group_hash[g];
    }
  };

  int64_t row_key_buf[4];
  std::vector<int64_t> row_key_vec;
  int64_t* row_key = row_key_buf;
  if (k > 4) {
    row_key_vec.resize(k);
    row_key = row_key_vec.data();
  }

  for (int32_t r : rows) {
    uint64_t hash;
    if (k == 1) {
      row_key[0] = key_cols[0]->CellKey(r);
      hash = Mix64(static_cast<uint64_t>(row_key[0]));
    } else {
      hash = 0x9E3779B97F4A7C15ULL;
      for (size_t i = 0; i < k; ++i) {
        row_key[i] = key_cols[i]->CellKey(r);
        hash = HashCombine(hash, static_cast<uint64_t>(row_key[i]));
      }
    }

    size_t pos = static_cast<size_t>(hash) & mask;
    int32_t group = -1;
    while (slot_group[pos] >= 0) {
      if (slot_hash[pos] == hash) {
        const int64_t* stored =
            key_storage.data() + static_cast<size_t>(slot_group[pos]) * k;
        bool equal = true;
        for (size_t i = 0; i < k; ++i) {
          if (stored[i] != row_key[i]) {
            equal = false;
            break;
          }
        }
        if (equal) {
          group = slot_group[pos];
          break;
        }
      }
      pos = (pos + 1) & mask;
    }
    if (group < 0) {
      group = static_cast<int32_t>(result.groups.size());
      slot_group[pos] = group;
      slot_hash[pos] = hash;
      group_hash.push_back(hash);
      key_storage.insert(key_storage.end(), row_key, row_key + k);
      Group g;
      g.keys.reserve(k);
      for (int c : spec.group_columns) {
        g.keys.push_back(table.column(c)->GetValue(r));
      }
      result.groups.push_back(std::move(g));
      if (result.groups.size() * 4 > capacity * 3) grow();
    }
    result.groups[static_cast<size_t>(group)].rows.push_back(r);
  }

  // Aggregate each group.
  for (auto& g : result.groups) {
    if (spec.agg == AggFunc::kCount) {
      g.aggregate = static_cast<double>(g.rows.size());
      g.agg_valid = true;
      continue;
    }
    const Column& agg_col = *table.column(spec.agg_column);
    double acc = 0.0;
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    int64_t n = 0;
    for (int32_t r : g.rows) {
      if (agg_col.IsNull(r)) continue;
      double v = agg_col.AsDoubleOrNan(r);
      acc += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
      ++n;
    }
    g.agg_valid = (n > 0);
    if (!g.agg_valid) continue;
    switch (spec.agg) {
      case AggFunc::kSum:
        g.aggregate = acc;
        break;
      case AggFunc::kMin:
        g.aggregate = mn;
        break;
      case AggFunc::kMax:
        g.aggregate = mx;
        break;
      case AggFunc::kAvg:
        g.aggregate = acc / static_cast<double>(n);
        break;
      case AggFunc::kCount:
        break;
    }
  }

  // Deterministic display order: sort by key values.
  std::sort(result.groups.begin(), result.groups.end(),
            [](const Group& a, const Group& b) {
              for (size_t i = 0; i < a.keys.size() && i < b.keys.size(); ++i) {
                if (ValueLess(a.keys[i], b.keys[i])) return true;
                if (ValueLess(b.keys[i], a.keys[i])) return false;
              }
              return false;
            });
  return result;
}

std::vector<int32_t> AllRows(const Table& table) {
  ATENA_CHECK(table.num_rows() <= std::numeric_limits<int32_t>::max())
      << "AllRows: table '" << table.name()
      << "' exceeds int32 row-index range (" << table.num_rows() << " rows)";
  std::vector<int32_t> rows(static_cast<size_t>(table.num_rows()));
  for (int64_t i = 0; i < table.num_rows(); ++i) {
    rows[static_cast<size_t>(i)] = static_cast<int32_t>(i);
  }
  return rows;
}

}  // namespace atena
