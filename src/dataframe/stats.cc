#include "dataframe/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/math_utils.h"
#include "dataframe/ops.h"

namespace atena {

ColumnStats ComputeColumnStats(const Column& column,
                               const std::vector<int32_t>& rows) {
  ColumnStats stats;
  stats.count = static_cast<int64_t>(rows.size());
  auto hist = ValueHistogram(column, rows);
  for (int32_t r : rows) {
    if (column.IsNull(r)) ++stats.nulls;
  }
  stats.distinct = static_cast<int64_t>(hist.size());
  std::vector<double> counts;
  counts.reserve(hist.size());
  for (const auto& [k, v] : hist) {
    (void)k;
    counts.push_back(v);
  }
  stats.entropy = Entropy(counts);
  stats.normalized_entropy = NormalizedEntropy(counts);
  return stats;
}

std::unordered_map<int64_t, double> ValueHistogram(
    const Column& column, const std::vector<int32_t>& rows) {
  std::unordered_map<int64_t, double> hist;
  for (int32_t r : rows) {
    if (column.IsNull(r)) continue;
    hist[column.CellKey(r)] += 1.0;
  }
  return hist;
}

std::unordered_map<int64_t, double> DoubleHistogram(
    const std::vector<double>& values) {
  std::unordered_map<int64_t, double> hist;
  for (double v : values) {
    if (std::isnan(v)) continue;
    hist[static_cast<int64_t>(std::bit_cast<uint64_t>(v))] += 1.0;
  }
  return hist;
}

std::vector<TokenFreq> TokenFrequencies(const Column& column,
                                        const std::vector<int32_t>& rows) {
  // Count by cell key, then box one representative Value per key.
  std::unordered_map<int64_t, TokenFreq> by_key;
  for (int32_t r : rows) {
    if (column.IsNull(r)) continue;
    auto [it, inserted] = by_key.try_emplace(column.CellKey(r));
    if (inserted) it->second.token = column.GetValue(r);
    ++it->second.count;
  }
  std::vector<TokenFreq> out;
  out.reserve(by_key.size());
  for (auto& [k, tf] : by_key) {
    (void)k;
    out.push_back(std::move(tf));
  }
  std::sort(out.begin(), out.end(), [](const TokenFreq& a, const TokenFreq& b) {
    if (a.count != b.count) return a.count > b.count;
    return ValueLess(a.token, b.token);
  });
  return out;
}

}  // namespace atena
