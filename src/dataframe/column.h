#ifndef ATENA_DATAFRAME_COLUMN_H_
#define ATENA_DATAFRAME_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "dataframe/value.h"

namespace atena {

/// Rows per column chunk. Chunking is logical: cell storage stays one
/// contiguous array (so row ids keep addressing it directly and the
/// Table/RowSet interfaces are untouched), and chunk c summarizes rows
/// [c * kColumnChunkSize, (c + 1) * kColumnChunkSize). Must stay a power of
/// two — kernels derive chunk ids by shifting row ids.
constexpr int64_t kColumnChunkSize = 4096;
constexpr int kColumnChunkShift = 12;
static_assert(kColumnChunkSize == int64_t{1} << kColumnChunkShift);

/// Zone map of one column chunk, computed once when the column is built.
/// Filter kernels consult it to skip chunks that cannot match a predicate
/// (or to emit whole chunks that provably match without testing rows).
struct ColumnChunkStats {
  /// Min/max over the chunk's non-null cells *as doubles* — the exact
  /// numeric view predicate rows are compared under (AsDoubleOrNan), so
  /// zone-map conclusions are consistent with per-row comparisons even for
  /// int64 values beyond double's integer range. Ignores NaN cells (see
  /// nan_count). +inf/-inf when the chunk has no non-null numeric cell.
  double min = 0.0;
  double max = 0.0;
  /// Exact integer bounds for int64 columns (feeds the dense group-by fast
  /// path, which must not round). INT64_MAX/INT64_MIN when empty.
  int64_t min_int = 0;
  int64_t max_int = 0;
  /// Dictionary-code bounds for string columns. INT32_MAX/-1 when the
  /// chunk has no non-null string cell.
  int32_t min_code = 0;
  int32_t max_code = 0;
  /// Null cells in the chunk; == chunk length means the chunk never
  /// matches any predicate.
  int32_t null_count = 0;
  /// Non-null NaN cells (float columns only). NaN escapes min/max, so an
  /// "every row matches" zone-map proof additionally requires nan_count==0.
  int32_t nan_count = 0;
};

/// Immutable typed column. String columns are dictionary-encoded: each cell
/// stores a 32-bit code into a per-column dictionary, so equality filters and
/// group-bys run on integer codes. Nulls are tracked in a validity vector.
///
/// Columns are built once via ColumnBuilder and then shared (shared_ptr)
/// between tables/views; they are never mutated after construction. Building
/// also materializes per-chunk zone maps (see ColumnChunkStats), which the
/// selection-vector kernels in dataframe/kernels.h use for chunk skipping.
class Column {
 public:
  DataType type() const { return type_; }
  int64_t length() const { return static_cast<int64_t>(validity_.size()); }
  const std::string& name() const { return name_; }

  bool IsNull(int64_t row) const { return !validity_[row]; }
  int64_t null_count() const { return null_count_; }

  /// Typed accessors; calling the wrong one for the column type is a
  /// programmer error (checked in debug via assert-like behavior of vector).
  int64_t GetInt(int64_t row) const { return ints_[row]; }
  double GetDouble(int64_t row) const { return doubles_[row]; }
  std::string_view GetString(int64_t row) const {
    return dictionary_[codes_[row]];
  }
  /// Dictionary code of a string cell (meaningless for null cells).
  int32_t GetCode(int64_t row) const { return codes_[row]; }
  int32_t dictionary_size() const {
    return static_cast<int32_t>(dictionary_.size());
  }
  const std::string& DictionaryEntry(int32_t code) const {
    return dictionary_[code];
  }

  /// Generic cell accessor (boxes the value; avoid in hot loops).
  Value GetValue(int64_t row) const;

  /// Numeric view of a cell: the int/double value, or NaN for nulls and
  /// string cells. Lets aggregation kernels treat numeric columns uniformly.
  double AsDoubleOrNan(int64_t row) const;

  /// A canonical 64-bit key for grouping/histogramming a cell: dictionary
  /// code for strings, raw bits for doubles, the value for ints; nulls map
  /// to a reserved sentinel. Two cells have equal keys iff they are equal.
  int64_t CellKey(int64_t row) const;

  /// Looks up the dictionary code of `token`; returns -1 when absent.
  int32_t FindCode(std::string_view token) const;

  /// Number of kColumnChunkSize-row chunks (⌈length / kColumnChunkSize⌉).
  int64_t num_chunks() const {
    return (length() + kColumnChunkSize - 1) >> kColumnChunkShift;
  }
  /// Per-chunk zone maps, one entry per chunk (see ColumnChunkStats).
  const std::vector<ColumnChunkStats>& chunk_stats() const {
    return chunk_stats_;
  }

  /// Raw cell storage for kernels — contiguous across all chunks, indexed
  /// directly by row id. Only the array matching type() holds cells;
  /// validity_data()[r] != 0 ⇔ row r is non-null.
  const int64_t* int_data() const { return ints_.data(); }
  const double* double_data() const { return doubles_.data(); }
  const int32_t* code_data() const { return codes_.data(); }
  const uint8_t* validity_data() const { return validity_.data(); }

 private:
  friend class ColumnBuilder;
  Column() = default;

  std::string name_;
  DataType type_ = DataType::kInt64;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<int32_t> codes_;
  std::vector<std::string> dictionary_;
  std::unordered_map<std::string, int32_t> dictionary_index_;
  std::vector<uint8_t> validity_;
  std::vector<ColumnChunkStats> chunk_stats_;
  int64_t null_count_ = 0;
};

using ColumnPtr = std::shared_ptr<const Column>;

/// Accumulates cells and produces an immutable Column. Append* calls must
/// match the declared type; mismatches return an error and leave the builder
/// unchanged.
class ColumnBuilder {
 public:
  ColumnBuilder(std::string name, DataType type);

  Status AppendInt(int64_t value);
  Status AppendDouble(double value);
  Status AppendString(std::string_view value);
  void AppendNull();
  /// Appends a boxed value (type-checked; ints are widened into float
  /// columns).
  Status AppendValue(const Value& value);

  int64_t length() const { return static_cast<int64_t>(column_->validity_.size()); }
  DataType type() const { return column_->type_; }

  /// Finalizes the column. The builder is left empty and reusable.
  ColumnPtr Finish();

 private:
  int32_t InternString(std::string_view value);

  std::shared_ptr<Column> column_;
};

}  // namespace atena

#endif  // ATENA_DATAFRAME_COLUMN_H_
