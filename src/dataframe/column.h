#ifndef ATENA_DATAFRAME_COLUMN_H_
#define ATENA_DATAFRAME_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "dataframe/value.h"

namespace atena {

/// Immutable typed column. String columns are dictionary-encoded: each cell
/// stores a 32-bit code into a per-column dictionary, so equality filters and
/// group-bys run on integer codes. Nulls are tracked in a validity vector.
///
/// Columns are built once via ColumnBuilder and then shared (shared_ptr)
/// between tables/views; they are never mutated after construction.
class Column {
 public:
  DataType type() const { return type_; }
  int64_t length() const { return static_cast<int64_t>(validity_.size()); }
  const std::string& name() const { return name_; }

  bool IsNull(int64_t row) const { return !validity_[row]; }
  int64_t null_count() const { return null_count_; }

  /// Typed accessors; calling the wrong one for the column type is a
  /// programmer error (checked in debug via assert-like behavior of vector).
  int64_t GetInt(int64_t row) const { return ints_[row]; }
  double GetDouble(int64_t row) const { return doubles_[row]; }
  std::string_view GetString(int64_t row) const {
    return dictionary_[codes_[row]];
  }
  /// Dictionary code of a string cell (meaningless for null cells).
  int32_t GetCode(int64_t row) const { return codes_[row]; }
  int32_t dictionary_size() const {
    return static_cast<int32_t>(dictionary_.size());
  }
  const std::string& DictionaryEntry(int32_t code) const {
    return dictionary_[code];
  }

  /// Generic cell accessor (boxes the value; avoid in hot loops).
  Value GetValue(int64_t row) const;

  /// Numeric view of a cell: the int/double value, or NaN for nulls and
  /// string cells. Lets aggregation kernels treat numeric columns uniformly.
  double AsDoubleOrNan(int64_t row) const;

  /// A canonical 64-bit key for grouping/histogramming a cell: dictionary
  /// code for strings, raw bits for doubles, the value for ints; nulls map
  /// to a reserved sentinel. Two cells have equal keys iff they are equal.
  int64_t CellKey(int64_t row) const;

  /// Looks up the dictionary code of `token`; returns -1 when absent.
  int32_t FindCode(std::string_view token) const;

 private:
  friend class ColumnBuilder;
  Column() = default;

  std::string name_;
  DataType type_ = DataType::kInt64;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<int32_t> codes_;
  std::vector<std::string> dictionary_;
  std::unordered_map<std::string, int32_t> dictionary_index_;
  std::vector<uint8_t> validity_;
  int64_t null_count_ = 0;
};

using ColumnPtr = std::shared_ptr<const Column>;

/// Accumulates cells and produces an immutable Column. Append* calls must
/// match the declared type; mismatches return an error and leave the builder
/// unchanged.
class ColumnBuilder {
 public:
  ColumnBuilder(std::string name, DataType type);

  Status AppendInt(int64_t value);
  Status AppendDouble(double value);
  Status AppendString(std::string_view value);
  void AppendNull();
  /// Appends a boxed value (type-checked; ints are widened into float
  /// columns).
  Status AppendValue(const Value& value);

  int64_t length() const { return static_cast<int64_t>(column_->validity_.size()); }
  DataType type() const { return column_->type_; }

  /// Finalizes the column. The builder is left empty and reusable.
  ColumnPtr Finish();

 private:
  int32_t InternString(std::string_view value);

  std::shared_ptr<Column> column_;
};

}  // namespace atena

#endif  // ATENA_DATAFRAME_COLUMN_H_
