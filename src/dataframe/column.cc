#include "dataframe/column.h"

#include <bit>
#include <cmath>
#include <limits>

namespace atena {

namespace {
// Reserved CellKey for null cells; chosen so it cannot collide with a
// dictionary code, an int64 payload collision is theoretically possible but
// harmless (grouping nulls with one specific huge value).
constexpr int64_t kNullCellKey = std::numeric_limits<int64_t>::min() + 1;
}  // namespace

Value Column::GetValue(int64_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value(ints_[row]);
    case DataType::kFloat64:
      return Value(doubles_[row]);
    case DataType::kString:
      return Value(std::string(GetString(row)));
  }
  return Value::Null();
}

double Column::AsDoubleOrNan(int64_t row) const {
  if (IsNull(row)) return std::numeric_limits<double>::quiet_NaN();
  switch (type_) {
    case DataType::kInt64:
      return static_cast<double>(ints_[row]);
    case DataType::kFloat64:
      return doubles_[row];
    case DataType::kString:
      return std::numeric_limits<double>::quiet_NaN();
  }
  return std::numeric_limits<double>::quiet_NaN();
}

int64_t Column::CellKey(int64_t row) const {
  if (IsNull(row)) return kNullCellKey;
  switch (type_) {
    case DataType::kInt64:
      return ints_[row];
    case DataType::kFloat64:
      return static_cast<int64_t>(std::bit_cast<uint64_t>(doubles_[row]));
    case DataType::kString:
      return codes_[row];
  }
  return kNullCellKey;
}

int32_t Column::FindCode(std::string_view token) const {
  auto it = dictionary_index_.find(std::string(token));
  return it == dictionary_index_.end() ? -1 : it->second;
}

ColumnBuilder::ColumnBuilder(std::string name, DataType type)
    : column_(std::shared_ptr<Column>(new Column())) {
  column_->name_ = std::move(name);
  column_->type_ = type;
}

Status ColumnBuilder::AppendInt(int64_t value) {
  if (column_->type_ == DataType::kFloat64) {
    return AppendDouble(static_cast<double>(value));
  }
  if (column_->type_ != DataType::kInt64) {
    return Status::TypeMismatch("AppendInt on non-int column '" +
                                column_->name_ + "'");
  }
  column_->ints_.push_back(value);
  column_->validity_.push_back(1);
  return Status::OK();
}

Status ColumnBuilder::AppendDouble(double value) {
  if (column_->type_ != DataType::kFloat64) {
    return Status::TypeMismatch("AppendDouble on non-float column '" +
                                column_->name_ + "'");
  }
  column_->doubles_.push_back(value);
  column_->validity_.push_back(1);
  return Status::OK();
}

Status ColumnBuilder::AppendString(std::string_view value) {
  if (column_->type_ != DataType::kString) {
    return Status::TypeMismatch("AppendString on non-string column '" +
                                column_->name_ + "'");
  }
  column_->codes_.push_back(InternString(value));
  column_->validity_.push_back(1);
  return Status::OK();
}

void ColumnBuilder::AppendNull() {
  switch (column_->type_) {
    case DataType::kInt64:
      column_->ints_.push_back(0);
      break;
    case DataType::kFloat64:
      column_->doubles_.push_back(0.0);
      break;
    case DataType::kString:
      column_->codes_.push_back(0);
      // Null string cells still need a valid code; ensure slot 0 exists.
      if (column_->dictionary_.empty()) InternString("");
      break;
  }
  column_->validity_.push_back(0);
  ++column_->null_count_;
}

Status ColumnBuilder::AppendValue(const Value& value) {
  if (value.is_null()) {
    AppendNull();
    return Status::OK();
  }
  if (value.is_int()) return AppendInt(value.as_int());
  if (value.is_double()) return AppendDouble(value.as_double());
  return AppendString(value.as_string());
}

int32_t ColumnBuilder::InternString(std::string_view value) {
  auto it = column_->dictionary_index_.find(std::string(value));
  if (it != column_->dictionary_index_.end()) return it->second;
  int32_t code = static_cast<int32_t>(column_->dictionary_.size());
  column_->dictionary_.emplace_back(value);
  column_->dictionary_index_.emplace(std::string(value), code);
  return code;
}

ColumnPtr ColumnBuilder::Finish() {
  auto finished = column_;
  column_ = std::shared_ptr<Column>(new Column());
  column_->name_ = finished->name_;
  column_->type_ = finished->type_;

  // Materialize the per-chunk zone maps. One pass over the cells at build
  // time buys chunk skipping on every later filter over the column.
  const int64_t n = finished->length();
  const int64_t num_chunks = (n + kColumnChunkSize - 1) >> kColumnChunkShift;
  finished->chunk_stats_.resize(static_cast<size_t>(num_chunks));
  for (int64_t c = 0; c < num_chunks; ++c) {
    ColumnChunkStats& cs = finished->chunk_stats_[static_cast<size_t>(c)];
    cs.min = std::numeric_limits<double>::infinity();
    cs.max = -std::numeric_limits<double>::infinity();
    cs.min_int = std::numeric_limits<int64_t>::max();
    cs.max_int = std::numeric_limits<int64_t>::min();
    cs.min_code = std::numeric_limits<int32_t>::max();
    cs.max_code = -1;
    const int64_t lo = c << kColumnChunkShift;
    const int64_t hi = std::min(n, lo + kColumnChunkSize);
    switch (finished->type_) {
      case DataType::kInt64:
        for (int64_t r = lo; r < hi; ++r) {
          if (!finished->validity_[static_cast<size_t>(r)]) {
            ++cs.null_count;
            continue;
          }
          const int64_t v = finished->ints_[static_cast<size_t>(r)];
          cs.min_int = std::min(cs.min_int, v);
          cs.max_int = std::max(cs.max_int, v);
        }
        // int64→double is monotonic, so the cast bounds bound exactly the
        // cast values predicate kernels compare (AsDoubleOrNan semantics).
        if (cs.min_int <= cs.max_int) {
          cs.min = static_cast<double>(cs.min_int);
          cs.max = static_cast<double>(cs.max_int);
        }
        break;
      case DataType::kFloat64:
        for (int64_t r = lo; r < hi; ++r) {
          if (!finished->validity_[static_cast<size_t>(r)]) {
            ++cs.null_count;
            continue;
          }
          const double v = finished->doubles_[static_cast<size_t>(r)];
          if (std::isnan(v)) {
            ++cs.nan_count;
            continue;
          }
          if (v < cs.min) cs.min = v;
          if (v > cs.max) cs.max = v;
        }
        break;
      case DataType::kString:
        for (int64_t r = lo; r < hi; ++r) {
          if (!finished->validity_[static_cast<size_t>(r)]) {
            ++cs.null_count;
            continue;
          }
          const int32_t code = finished->codes_[static_cast<size_t>(r)];
          cs.min_code = std::min(cs.min_code, code);
          cs.max_code = std::max(cs.max_code, code);
        }
        break;
    }
  }
  return finished;
}

}  // namespace atena
