#ifndef ATENA_DATAFRAME_DESCRIBE_H_
#define ATENA_DATAFRAME_DESCRIBE_H_

#include <vector>

#include "common/status.h"
#include "dataframe/table.h"

namespace atena {

/// Sorts a row selection by one column. Nulls sort first; string columns
/// sort lexicographically, numeric ones by value. Stable, so repeated
/// sorts by different columns compose the way analysts expect.
Result<std::vector<int32_t>> SortRows(const Table& table,
                                      std::vector<int32_t> rows, int column,
                                      bool ascending = true);

/// The `k` rows with the largest (`largest`=true) or smallest values of a
/// numeric column; null cells are skipped. Deterministic tie-break by row
/// id.
Result<std::vector<int32_t>> TopKRows(const Table& table,
                                      const std::vector<int32_t>& rows,
                                      int column, int k, bool largest = true);

/// Builds the one-row-per-column summary every EDA notebook opens with:
/// name, type, non-null count, nulls, distinct values, min/max/mean for
/// numeric columns, and the most frequent token with its count.
Result<TablePtr> DescribeTable(const Table& table);

}  // namespace atena

#endif  // ATENA_DATAFRAME_DESCRIBE_H_
