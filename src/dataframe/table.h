#ifndef ATENA_DATAFRAME_TABLE_H_
#define ATENA_DATAFRAME_TABLE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "dataframe/column.h"

namespace atena {

/// An immutable relational table: equal-length named columns. Tables are
/// shared by pointer between the EDA environment's displays; filtering
/// produces row-id selections over the same table rather than copies.
class Table {
 public:
  /// Builds a table from finished columns; all columns must have equal
  /// length and distinct, non-empty names.
  static Result<std::shared_ptr<const Table>> Make(
      std::string name, std::vector<ColumnPtr> columns);

  const std::string& name() const { return name_; }
  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  const ColumnPtr& column(int i) const { return columns_[i]; }
  const std::string& column_name(int i) const { return columns_[i]->name(); }

  /// Index of the column named `name`, or -1 when absent.
  int FindColumn(std::string_view name) const;

  /// Materializes a new table containing the given rows (in order). Row ids
  /// outside [0, num_rows) are a programmer error.
  Result<std::shared_ptr<const Table>> Take(
      const std::vector<int32_t>& rows, std::string new_name) const;

  /// Renders up to `max_rows` rows as an aligned ASCII table (for examples
  /// and notebook output).
  std::string ToString(int64_t max_rows = 10) const;

 private:
  Table() = default;

  std::string name_;
  int64_t num_rows_ = 0;
  std::vector<ColumnPtr> columns_;
};

using TablePtr = std::shared_ptr<const Table>;

/// Row-oriented convenience builder used by dataset generators and tests:
/// declare the schema up front, then append rows of boxed values.
class TableBuilder {
 public:
  explicit TableBuilder(std::string table_name) : name_(std::move(table_name)) {}

  /// Declares a column; must be called before the first AppendRow.
  void AddColumn(std::string name, DataType type);

  /// Appends one row; `cells` must match the declared column count and
  /// types (nulls allowed anywhere).
  Status AppendRow(const std::vector<Value>& cells);

  int64_t num_rows() const { return num_rows_; }

  Result<TablePtr> Finish();

 private:
  std::string name_;
  std::vector<ColumnBuilder> builders_;
  int64_t num_rows_ = 0;
};

}  // namespace atena

#endif  // ATENA_DATAFRAME_TABLE_H_
