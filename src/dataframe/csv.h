#ifndef ATENA_DATAFRAME_CSV_H_
#define ATENA_DATAFRAME_CSV_H_

#include <string>

#include "common/status.h"
#include "dataframe/table.h"

namespace atena {

struct CsvOptions {
  char delimiter = ',';
  /// Cells equal to one of these (after trimming) parse as null.
  bool treat_empty_as_null = true;
  /// Number of rows inspected for type inference; 0 means all rows.
  int64_t inference_rows = 1000;
};

/// Parses CSV text into a table. The first line is the header. Column types
/// are inferred: a column is int64 if every non-null inspected cell parses
/// as an integer, float64 if every cell parses as a number, else string.
/// Quoted fields (RFC-4180 double quotes with "" escapes) are supported.
Result<TablePtr> ReadCsvString(const std::string& text, std::string table_name,
                               const CsvOptions& options = {});

/// Reads a CSV file from disk.
Result<TablePtr> ReadCsvFile(const std::string& path,
                             const CsvOptions& options = {});

/// Serializes a table to CSV (header + rows). Nulls render as empty fields;
/// fields containing the delimiter, quotes or newlines are quoted.
std::string WriteCsvString(const Table& table, const CsvOptions& options = {});

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace atena

#endif  // ATENA_DATAFRAME_CSV_H_
