#ifndef ATENA_DATAFRAME_VALUE_H_
#define ATENA_DATAFRAME_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace atena {

/// Physical column types supported by the engine. Dataset attributes of
/// "categorical" or "textual" semantic type are both stored as kString
/// (dictionary-encoded); the distinction the paper cares about (continuous
/// vs. categorical) is made per-attribute by AttributeKind in the EDA layer.
enum class DataType {
  kInt64,
  kFloat64,
  kString,
};

const char* DataTypeName(DataType type);

/// A single (possibly null) cell value. Used at API boundaries — filter
/// terms, group keys, notebook rendering — never for bulk storage.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }

  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }

  /// True when the value carries a number (int or double); `*out` receives
  /// the value widened to double.
  bool ToDouble(double* out) const;

  /// Notebook-facing rendering: "∅" for null, FormatDouble for floats.
  std::string ToString() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

}  // namespace atena

#endif  // ATENA_DATAFRAME_VALUE_H_
