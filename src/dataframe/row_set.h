#ifndef ATENA_DATAFRAME_ROW_SET_H_
#define ATENA_DATAFRAME_ROW_SET_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace atena {

/// An immutable, shareable row selection over a table.
///
/// A RowSet wraps `shared_ptr<const vector<int32_t>>` behind the read-only
/// surface of a vector, so displays, the per-step history, environment
/// snapshots and the display cache all share one row buffer instead of
/// deep-copying it (copying a RowSet copies a pointer). It converts
/// implicitly to `const std::vector<int32_t>&`, which keeps the dataframe
/// kernels' signatures unchanged.
class RowSet {
 public:
  using Storage = std::shared_ptr<const std::vector<int32_t>>;

  RowSet() = default;
  /// Takes ownership of a freshly computed selection.
  RowSet(std::vector<int32_t> rows)  // NOLINT(runtime/explicit)
      : data_(std::make_shared<const std::vector<int32_t>>(std::move(rows))) {}
  /// Adopts an already shared selection (e.g. a display-cache hit).
  RowSet(Storage rows)  // NOLINT(runtime/explicit)
      : data_(std::move(rows)) {}

  RowSet& operator=(std::vector<int32_t> rows) {
    data_ = std::make_shared<const std::vector<int32_t>>(std::move(rows));
    return *this;
  }

  const std::vector<int32_t>& vec() const { return data_ ? *data_ : Empty(); }
  operator const std::vector<int32_t>&() const { return vec(); }
  /// The underlying shared buffer (null when default-constructed).
  const Storage& storage() const { return data_; }

  size_t size() const { return vec().size(); }
  bool empty() const { return vec().empty(); }
  int32_t operator[](size_t i) const { return vec()[i]; }
  std::vector<int32_t>::const_iterator begin() const { return vec().begin(); }
  std::vector<int32_t>::const_iterator end() const { return vec().end(); }

 private:
  static const std::vector<int32_t>& Empty() {
    static const std::vector<int32_t> empty;
    return empty;
  }

  Storage data_;
};

}  // namespace atena

#endif  // ATENA_DATAFRAME_ROW_SET_H_
