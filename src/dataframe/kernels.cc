#include "dataframe/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <type_traits>

#include "common/hashing.h"
#include "common/string_utils.h"
#include "common/thread_pool.h"

namespace atena {

namespace {

bool IsNumericType(DataType type) {
  return type == DataType::kInt64 || type == DataType::kFloat64;
}

bool IsOrderingOp(CompareOp op) {
  return op == CompareOp::kGt || op == CompareOp::kGe ||
         op == CompareOp::kLt || op == CompareOp::kLe;
}

bool IsStringOp(CompareOp op) {
  return op == CompareOp::kContains || op == CompareOp::kStartsWith ||
         op == CompareOp::kEndsWith;
}

// ---------------------------------------------------------------------------
// Shared filter validation. Both the kernel and the scalar reference resolve
// a call through PlanFilter so their error statuses can never drift apart.
// ---------------------------------------------------------------------------

struct FilterPlan {
  enum class Mode {
    kNumeric,     // ordering or numeric equality: AsDoubleOrNan vs threshold
    kStringCode,  // string kEq/kNeq: dictionary-code compare
    kSubstring,   // kContains/kStartsWith/kEndsWith over the dictionary
  };
  Mode mode = Mode::kNumeric;
  CompareOp op = CompareOp::kEq;
  double threshold = 0.0;               // kNumeric
  int32_t code = -1;                    // kStringCode; -1 = term not in dict
  const std::string* needle = nullptr;  // kSubstring; borrowed from the term
};

Result<FilterPlan> PlanFilter(const Table& table, int column, CompareOp op,
                              const Value& term) {
  if (column < 0 || column >= table.num_columns()) {
    return Status::OutOfRange("FilterRows: column index " +
                              std::to_string(column));
  }
  if (table.num_rows() > std::numeric_limits<int32_t>::max()) {
    return Status::OutOfRange(
        "FilterRows: table exceeds int32 row-index range (" +
        std::to_string(table.num_rows()) + " rows)");
  }
  const Column& col = *table.column(column);
  if (term.is_null()) {
    return Status::InvalidArgument("FilterRows: null filter term");
  }

  FilterPlan plan;
  plan.op = op;
  if (IsOrderingOp(op)) {
    if (!IsNumericType(col.type())) {
      return Status::TypeMismatch("ordering filter on non-numeric column '" +
                                  col.name() + "'");
    }
    if (!term.ToDouble(&plan.threshold)) {
      return Status::TypeMismatch("ordering filter with non-numeric term");
    }
    plan.mode = FilterPlan::Mode::kNumeric;
    return plan;
  }

  if (IsStringOp(op)) {
    if (col.type() != DataType::kString) {
      return Status::TypeMismatch("substring filter on non-string column '" +
                                  col.name() + "'");
    }
    if (!term.is_string()) {
      return Status::TypeMismatch("substring filter with non-string term");
    }
    plan.mode = FilterPlan::Mode::kSubstring;
    plan.needle = &term.as_string();
    return plan;
  }

  // Equality family.
  if (col.type() == DataType::kString) {
    if (!term.is_string()) {
      return Status::TypeMismatch("equality filter on string column '" +
                                  col.name() + "' with non-string term");
    }
    plan.mode = FilterPlan::Mode::kStringCode;
    plan.code = col.FindCode(term.as_string());
    return plan;
  }
  if (!term.ToDouble(&plan.threshold)) {
    return Status::TypeMismatch("equality filter on numeric column '" +
                                col.name() + "' with non-numeric term");
  }
  plan.mode = FilterPlan::Mode::kNumeric;
  return plan;
}

// ---------------------------------------------------------------------------
// Scalar reference path (the pre-kernel implementation, retained verbatim).
// ---------------------------------------------------------------------------

/// Scans `rows` keeping the non-null rows that satisfy `pred`. The
/// predicate is a template parameter so each operator gets its own tight
/// loop (no per-row switch). The output is reserved from a selectivity
/// estimate over a small stride sample, so typical filters do zero or one
/// reallocation instead of log2(n).
template <typename Pred>
std::vector<int32_t> ScanRows(const Column& col,
                              const std::vector<int32_t>& rows, Pred pred) {
  std::vector<int32_t> out;
  const size_t n = rows.size();
  constexpr size_t kSample = 128;
  if (n <= 4 * kSample) {
    out.reserve(n);
  } else {
    const size_t stride = n / kSample;
    size_t matched = 0;
    for (size_t i = 0; i < kSample; ++i) {
      const int32_t r = rows[i * stride];
      if (!col.IsNull(r) && pred(r)) ++matched;
    }
    // +1 smoothing and a 1/4 head-room margin; a bad estimate only costs a
    // realloc, never correctness.
    const size_t estimate = (n * (matched + 1)) / (kSample + 1);
    out.reserve(std::min(n, estimate + estimate / 4 + 16));
  }
  for (const int32_t r : rows) {
    if (!col.IsNull(r) && pred(r)) out.push_back(r);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Chunked kernel path.
// ---------------------------------------------------------------------------

enum class ChunkDecision { kSkip, kScan, kAllMatch };

// Numeric comparison policies. Row() is the per-row test on the double view
// of the cell; Any()/All() are the zone-map forms over the chunk's non-NaN
// value range [mn, mx]. kNanMatches marks operators a NaN cell satisfies
// (only !=, since NaN != t is true); NaN cells are invisible to mn/mx, so
// Classify() folds nan_count in separately.
//
// IntBound()/IntRow() are the exact integer forms used by the dense int64
// scan: for any int64 cell v with |v| <= 2^53 (so double(v) is exact) and
// any finite threshold t with |t| inside int64 range,
//   Row(double(v), t) == IntRow(v, b)   where IntBound(t, &b) derived b.
// The mapping replaces the real-valued comparison against t with an
// integer comparison against floor(t) or ceil(t): e.g. v > t iff
// v > floor(t) (when t is integral the two are the same test, otherwise
// v > t iff v >= ceil(t) = floor(t) + 1). IntBound() returns false when no
// such bound exists (NaN t, |t| too large, or non-integral t under ==/!=)
// and the scan falls back to the double loop.
constexpr double kIntBoundLimit = 9.0e18;  // < 2^63; floor/ceil stay in range

struct GtOp {
  static constexpr bool kNanMatches = false;
  static bool Row(double v, double t) { return v > t; }
  static bool Any(double /*mn*/, double mx, double t) { return mx > t; }
  static bool All(double mn, double /*mx*/, double t) { return mn > t; }
  static bool IntBound(double t, int64_t* b) {
    if (!(t >= -kIntBoundLimit && t <= kIntBoundLimit)) return false;
    *b = static_cast<int64_t>(std::floor(t));
    return true;
  }
  static bool IntRow(int64_t v, int64_t b) { return v > b; }
};
struct GeOp {
  static constexpr bool kNanMatches = false;
  static bool Row(double v, double t) { return v >= t; }
  static bool Any(double /*mn*/, double mx, double t) { return mx >= t; }
  static bool All(double mn, double /*mx*/, double t) { return mn >= t; }
  static bool IntBound(double t, int64_t* b) {
    if (!(t >= -kIntBoundLimit && t <= kIntBoundLimit)) return false;
    *b = static_cast<int64_t>(std::ceil(t));
    return true;
  }
  static bool IntRow(int64_t v, int64_t b) { return v >= b; }
};
struct LtOp {
  static constexpr bool kNanMatches = false;
  static bool Row(double v, double t) { return v < t; }
  static bool Any(double mn, double /*mx*/, double t) { return mn < t; }
  static bool All(double /*mn*/, double mx, double t) { return mx < t; }
  static bool IntBound(double t, int64_t* b) {
    if (!(t >= -kIntBoundLimit && t <= kIntBoundLimit)) return false;
    *b = static_cast<int64_t>(std::ceil(t));
    return true;
  }
  static bool IntRow(int64_t v, int64_t b) { return v < b; }
};
struct LeOp {
  static constexpr bool kNanMatches = false;
  static bool Row(double v, double t) { return v <= t; }
  static bool Any(double mn, double /*mx*/, double t) { return mn <= t; }
  static bool All(double /*mn*/, double mx, double t) { return mx <= t; }
  static bool IntBound(double t, int64_t* b) {
    if (!(t >= -kIntBoundLimit && t <= kIntBoundLimit)) return false;
    *b = static_cast<int64_t>(std::floor(t));
    return true;
  }
  static bool IntRow(int64_t v, int64_t b) { return v <= b; }
};
struct EqOp {
  static constexpr bool kNanMatches = false;
  static bool Row(double v, double t) { return v == t; }
  static bool Any(double mn, double mx, double t) {
    return t >= mn && t <= mx;
  }
  static bool All(double mn, double mx, double t) {
    return mn == mx && mn == t;
  }
  static bool IntBound(double t, int64_t* b) {
    if (!(t >= -kIntBoundLimit && t <= kIntBoundLimit)) return false;
    if (std::floor(t) != t) return false;  // non-integral t matches no int
    *b = static_cast<int64_t>(t);
    return true;
  }
  static bool IntRow(int64_t v, int64_t b) { return v == b; }
};
struct NeqOp {
  static constexpr bool kNanMatches = true;
  static bool Row(double v, double t) { return v != t; }
  static bool Any(double mn, double mx, double t) {
    return !(mn == mx && mn == t);
  }
  static bool All(double mn, double mx, double t) { return t < mn || t > mx; }
  static bool IntBound(double t, int64_t* b) {
    if (!(t >= -kIntBoundLimit && t <= kIntBoundLimit)) return false;
    if (std::floor(t) != t) return false;
    *b = static_cast<int64_t>(t);
    return true;
  }
  static bool IntRow(int64_t v, int64_t b) { return v != b; }
};

template <typename T, typename Op>
struct NumericPred {
  const T* data;
  const uint8_t* valid;
  double t;

  ChunkDecision Classify(const ColumnChunkStats& cs, int64_t len) const {
    if (cs.null_count == len) return ChunkDecision::kSkip;  // nulls never match
    const bool nan_hits = Op::kNanMatches && cs.nan_count > 0;
    const bool has_finite = cs.null_count + cs.nan_count < len;
    if (!(has_finite && Op::Any(cs.min, cs.max, t)) && !nan_hits) {
      return ChunkDecision::kSkip;
    }
    if (cs.null_count == 0 && (cs.nan_count == 0 || Op::kNanMatches) &&
        (!has_finite || Op::All(cs.min, cs.max, t))) {
      return ChunkDecision::kAllMatch;
    }
    return ChunkDecision::kScan;
  }
  int Test(int64_t r) const {
    return valid[r] & static_cast<int>(Op::Row(static_cast<double>(data[r]), t));
  }

  /// Dense evaluation of one contiguous chunk into a byte-per-row match
  /// buffer (bits[i] == Test(lo + i)). The loops are branch-free over
  /// contiguous arrays so they auto-vectorize; null-free chunks (the
  /// common case) drop the validity load, and int64 chunks whose values
  /// the double view represents exactly compare integers directly instead
  /// of converting every cell.
  void FillDense(const ColumnChunkStats& cs, int64_t lo, int64_t hi,
                 uint8_t* bits) const {
    const int64_t len = hi - lo;
    const T* d = data + lo;
    const uint8_t* v = valid + lo;
    if constexpr (std::is_same_v<T, int64_t>) {
      constexpr int64_t kExact = int64_t{1} << 53;
      int64_t b;
      if (cs.min_int >= -kExact && cs.max_int <= kExact &&
          Op::IntBound(t, &b)) {
        if (cs.null_count == 0) {
          for (int64_t i = 0; i < len; ++i) {
            bits[i] = static_cast<uint8_t>(Op::IntRow(d[i], b));
          }
        } else {
          for (int64_t i = 0; i < len; ++i) {
            bits[i] = v[i] & static_cast<uint8_t>(Op::IntRow(d[i], b));
          }
        }
        return;
      }
    }
    if (cs.null_count == 0) {
      for (int64_t i = 0; i < len; ++i) {
        bits[i] = static_cast<uint8_t>(Op::Row(static_cast<double>(d[i]), t));
      }
    } else {
      for (int64_t i = 0; i < len; ++i) {
        bits[i] =
            v[i] & static_cast<uint8_t>(Op::Row(static_cast<double>(d[i]), t));
      }
    }
  }
};

struct CodeEqPred {
  const int32_t* codes;
  const uint8_t* valid;
  int32_t c;

  ChunkDecision Classify(const ColumnChunkStats& cs, int64_t len) const {
    if (cs.null_count == len) return ChunkDecision::kSkip;
    if (c < cs.min_code || c > cs.max_code) return ChunkDecision::kSkip;
    // c is inside the range, so a single-code null-free chunk is all c.
    if (cs.null_count == 0 && cs.min_code == cs.max_code) {
      return ChunkDecision::kAllMatch;
    }
    return ChunkDecision::kScan;
  }
  int Test(int64_t r) const {
    return valid[r] & static_cast<int>(codes[r] == c);
  }
  void FillDense(const ColumnChunkStats& cs, int64_t lo, int64_t hi,
                 uint8_t* bits) const {
    const int64_t len = hi - lo;
    const int32_t* d = codes + lo;
    if (cs.null_count == 0) {
      for (int64_t i = 0; i < len; ++i) {
        bits[i] = static_cast<uint8_t>(d[i] == c);
      }
    } else {
      const uint8_t* v = valid + lo;
      for (int64_t i = 0; i < len; ++i) {
        bits[i] = v[i] & static_cast<uint8_t>(d[i] == c);
      }
    }
  }
};

struct CodeNeqPred {
  const int32_t* codes;
  const uint8_t* valid;
  int32_t c;  // may be -1 (absent term): every non-null row differs

  ChunkDecision Classify(const ColumnChunkStats& cs, int64_t len) const {
    if (cs.null_count == len) return ChunkDecision::kSkip;
    if (cs.min_code == cs.max_code && cs.min_code == c) {
      return ChunkDecision::kSkip;
    }
    if (cs.null_count == 0 && (c < cs.min_code || c > cs.max_code)) {
      return ChunkDecision::kAllMatch;
    }
    return ChunkDecision::kScan;
  }
  int Test(int64_t r) const {
    return valid[r] & static_cast<int>(codes[r] != c);
  }
  void FillDense(const ColumnChunkStats& cs, int64_t lo, int64_t hi,
                 uint8_t* bits) const {
    const int64_t len = hi - lo;
    const int32_t* d = codes + lo;
    if (cs.null_count == 0) {
      for (int64_t i = 0; i < len; ++i) {
        bits[i] = static_cast<uint8_t>(d[i] != c);
      }
    } else {
      const uint8_t* v = valid + lo;
      for (int64_t i = 0; i < len; ++i) {
        bits[i] = v[i] & static_cast<uint8_t>(d[i] != c);
      }
    }
  }
};

// Substring operators: the predicate was evaluated once per dictionary
// entry into a byte map, so the per-row test is a single indexed load.
struct DictBitmapPred {
  const int32_t* codes;
  const uint8_t* valid;
  const uint8_t* match;  // one byte per dictionary entry
  int32_t min_match;     // code bounds of matching entries
  int32_t max_match;

  ChunkDecision Classify(const ColumnChunkStats& cs, int64_t len) const {
    if (cs.null_count == len) return ChunkDecision::kSkip;
    if (cs.max_code < min_match || cs.min_code > max_match) {
      return ChunkDecision::kSkip;
    }
    return ChunkDecision::kScan;
  }
  int Test(int64_t r) const { return valid[r] & match[codes[r]]; }
  void FillDense(const ColumnChunkStats& cs, int64_t lo, int64_t hi,
                 uint8_t* bits) const {
    const int64_t len = hi - lo;
    const int32_t* d = codes + lo;
    // Null rows carry dictionary code 0 (see ColumnBuilder::AppendNull), so
    // the match[] lookup stays in bounds on both branches.
    if (cs.null_count == 0) {
      for (int64_t i = 0; i < len; ++i) {
        bits[i] = match[d[i]];
      }
    } else {
      const uint8_t* v = valid + lo;
      for (int64_t i = 0; i < len; ++i) {
        bits[i] = v[i] & match[d[i]];
      }
    }
  }
};

/// Emits the selected row ids of one dense chunk from its byte-match
/// buffer. Processes eight match bytes per step: an all-zero word (the
/// common case under a selective predicate) advances with one compare, an
/// all-ones word emits eight consecutive ids branch-free, and a mixed word
/// is compressed to an 8-bit mask (one multiply gathers the eight 0/1
/// bytes into the top byte) that is then walked set-bit by set-bit — work
/// proportional to the matches, not the rows. Returns the advanced output
/// cursor.
inline size_t EmitDense(const uint8_t* bits, int64_t lo, int64_t len,
                        int32_t* out, size_t m) {
  constexpr uint64_t kAllOnes = 0x0101010101010101ULL;
  constexpr uint64_t kMaskGather = 0x0102040810204080ULL;
  int64_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t word;
    std::memcpy(&word, bits + i, sizeof(word));
    if (word == 0) continue;
    const int32_t base = static_cast<int32_t>(lo + i);
    if (word == kAllOnes) {
      for (int32_t j = 0; j < 8; ++j) {
        out[m + static_cast<size_t>(j)] = base + j;
      }
      m += 8;
      continue;
    }
    uint32_t mask = static_cast<uint32_t>((word * kMaskGather) >> 56);
    while (mask != 0) {
      out[m++] = base + static_cast<int32_t>(__builtin_ctz(mask));
      mask &= mask - 1;
    }
  }
  for (; i < len; ++i) {
    out[m] = static_cast<int32_t>(lo + i);
    m += bits[i];
  }
  return m;
}

/// Drives a predicate over the selection chunk by chunk. Selections the
/// system produces are sorted ascending; sorted inputs get zone-map chunk
/// skipping (with lower_bound jumps over skipped chunks in sparse
/// selections) and bulk emission of all-match chunks. An unsorted input —
/// possible for external callers — falls back to a flat branch-light scan
/// with identical output. Identity selections evaluate scanned chunks in
/// two phases — a vectorizable dense predicate pass into a stack match
/// buffer (FillDense), then word-at-a-time emission (EmitDense) — while
/// sparse selections write output rows unconditionally and advance the
/// cursor by the match bit, so no inner loop carries a data-dependent
/// branch.
template <typename Pred>
std::vector<int32_t> ChunkedScan(const Column& col,
                                 const std::vector<int32_t>& rows,
                                 const Pred& pred, FilterKernelStats* stats) {
  const size_t n = rows.size();
  std::vector<int32_t> out(n);
  int32_t* out_data = out.data();
  size_t m = 0;

  // Sortedness precheck, blockwise: the inner loops accumulate flags
  // branch-free (so they vectorize) and the outer loop still bails out on
  // the first unsorted block instead of scanning the whole selection.
  bool nondecreasing = true;
  bool strict = true;
  {
    constexpr size_t kCheckBlock = 4096;
    size_t i = 1;
    while (i < n && nondecreasing) {
      const size_t end = std::min(n, i + kCheckBlock);
      int nd = 1;
      int st = 1;
      for (; i < end; ++i) {
        nd &= static_cast<int>(rows[i] >= rows[i - 1]);
        st &= static_cast<int>(rows[i] > rows[i - 1]);
      }
      nondecreasing = nd != 0;
      strict = strict && st != 0;
    }
  }

  const auto& chunks = col.chunk_stats();
  const int64_t num_chunks = static_cast<int64_t>(chunks.size());
  const int64_t num_rows = col.length();
  FilterKernelStats local;

  if (!nondecreasing) {
    local.chunks_total = num_chunks;
    local.chunks_scanned = num_chunks;
    for (size_t i = 0; i < n; ++i) {
      const int32_t r = rows[i];
      out_data[m] = r;
      m += static_cast<size_t>(pred.Test(r));
    }
  } else if (strict && static_cast<int64_t>(n) == num_rows) {
    // Identity selection (the overwhelmingly common root display): iterate
    // chunks directly, no selection indirection at all.
    alignas(64) uint8_t bits[kColumnChunkSize];
    for (int64_t c = 0; c < num_chunks; ++c) {
      const int64_t lo = c << kColumnChunkShift;
      const int64_t hi = std::min(num_rows, lo + kColumnChunkSize);
      ++local.chunks_total;
      const ChunkDecision d =
          pred.Classify(chunks[static_cast<size_t>(c)], hi - lo);
      if (d == ChunkDecision::kSkip) {
        ++local.chunks_skipped;
        continue;
      }
      if (d == ChunkDecision::kAllMatch) {
        ++local.chunks_all_match;
        for (int64_t r = lo; r < hi; ++r) {
          out_data[m++] = static_cast<int32_t>(r);
        }
        continue;
      }
      ++local.chunks_scanned;
      pred.FillDense(chunks[static_cast<size_t>(c)], lo, hi, bits);
      m = EmitDense(bits, lo, hi - lo, out_data, m);
    }
  } else {
    // Sorted (possibly sparse, possibly with duplicates) selection: visit
    // only the chunks the selection touches.
    size_t i = 0;
    while (i < n) {
      const int64_t c = static_cast<int64_t>(rows[i]) >> kColumnChunkShift;
      const int64_t lo = c << kColumnChunkShift;
      const int64_t chunk_end = lo + kColumnChunkSize;
      const int64_t hi = std::min(num_rows, chunk_end);
      ++local.chunks_total;
      const ChunkDecision d =
          pred.Classify(chunks[static_cast<size_t>(c)], hi - lo);
      if (d == ChunkDecision::kSkip) {
        ++local.chunks_skipped;
        i = static_cast<size_t>(
            std::lower_bound(rows.begin() + static_cast<std::ptrdiff_t>(i),
                             rows.end(), chunk_end,
                             [](int32_t a, int64_t b) { return a < b; }) -
            rows.begin());
        continue;
      }
      if (d == ChunkDecision::kAllMatch) {
        ++local.chunks_all_match;
        while (i < n && rows[i] < chunk_end) out_data[m++] = rows[i++];
        continue;
      }
      ++local.chunks_scanned;
      while (i < n && rows[i] < chunk_end) {
        const int32_t r = rows[i++];
        out_data[m] = r;
        m += static_cast<size_t>(pred.Test(r));
      }
    }
  }

  out.resize(m);
  if (stats) *stats = local;
  return out;
}

template <typename T>
std::vector<int32_t> DispatchNumeric(const Column& col, const T* data,
                                     const std::vector<int32_t>& rows,
                                     const FilterPlan& plan,
                                     FilterKernelStats* stats) {
  const uint8_t* valid = col.validity_data();
  const double t = plan.threshold;
  switch (plan.op) {
    case CompareOp::kGt:
      return ChunkedScan(col, rows, NumericPred<T, GtOp>{data, valid, t},
                         stats);
    case CompareOp::kGe:
      return ChunkedScan(col, rows, NumericPred<T, GeOp>{data, valid, t},
                         stats);
    case CompareOp::kLt:
      return ChunkedScan(col, rows, NumericPred<T, LtOp>{data, valid, t},
                         stats);
    case CompareOp::kLe:
      return ChunkedScan(col, rows, NumericPred<T, LeOp>{data, valid, t},
                         stats);
    case CompareOp::kEq:
      return ChunkedScan(col, rows, NumericPred<T, EqOp>{data, valid, t},
                         stats);
    default:
      return ChunkedScan(col, rows, NumericPred<T, NeqOp>{data, valid, t},
                         stats);
  }
}

}  // namespace

Result<std::vector<int32_t>> ScalarFilterRows(const Table& table,
                                              const std::vector<int32_t>& rows,
                                              int column, CompareOp op,
                                              const Value& term) {
  ATENA_ASSIGN_OR_RETURN(const FilterPlan plan,
                         PlanFilter(table, column, op, term));
  const Column& col = *table.column(column);
  switch (plan.mode) {
    case FilterPlan::Mode::kNumeric: {
      const double threshold = plan.threshold;
      switch (plan.op) {
        case CompareOp::kGt:
          return ScanRows(col, rows, [&](int32_t r) {
            return col.AsDoubleOrNan(r) > threshold;
          });
        case CompareOp::kGe:
          return ScanRows(col, rows, [&](int32_t r) {
            return col.AsDoubleOrNan(r) >= threshold;
          });
        case CompareOp::kLt:
          return ScanRows(col, rows, [&](int32_t r) {
            return col.AsDoubleOrNan(r) < threshold;
          });
        case CompareOp::kLe:
          return ScanRows(col, rows, [&](int32_t r) {
            return col.AsDoubleOrNan(r) <= threshold;
          });
        case CompareOp::kEq:
          return ScanRows(col, rows, [&](int32_t r) {
            return col.AsDoubleOrNan(r) == threshold;
          });
        default:
          return ScanRows(col, rows, [&](int32_t r) {
            return col.AsDoubleOrNan(r) != threshold;
          });
      }
    }
    case FilterPlan::Mode::kSubstring: {
      const std::string& needle = *plan.needle;
      switch (plan.op) {
        case CompareOp::kContains:
          return ScanRows(col, rows, [&](int32_t r) {
            return Contains(col.GetString(r), needle);
          });
        case CompareOp::kStartsWith:
          return ScanRows(col, rows, [&](int32_t r) {
            return StartsWith(col.GetString(r), needle);
          });
        default:
          return ScanRows(col, rows, [&](int32_t r) {
            return EndsWith(col.GetString(r), needle);
          });
      }
    }
    case FilterPlan::Mode::kStringCode: {
      // Token filters compare dictionary codes: one lookup, integer scans.
      const int32_t code = plan.code;
      if (plan.op == CompareOp::kEq) {
        if (code < 0) return std::vector<int32_t>{};  // absent matches none
        return ScanRows(col, rows,
                        [&](int32_t r) { return col.GetCode(r) == code; });
      }
      if (code < 0) {
        // Absent term: every non-null row differs from it.
        return ScanRows(col, rows, [](int32_t) { return true; });
      }
      return ScanRows(col, rows,
                      [&](int32_t r) { return col.GetCode(r) != code; });
    }
  }
  return Status::Internal("ScalarFilterRows: unreachable");
}

Result<std::vector<int32_t>> FilterRowsKernel(const Table& table,
                                              const std::vector<int32_t>& rows,
                                              int column, CompareOp op,
                                              const Value& term,
                                              FilterKernelStats* stats) {
  ATENA_ASSIGN_OR_RETURN(const FilterPlan plan,
                         PlanFilter(table, column, op, term));
  const Column& col = *table.column(column);
  if (stats) *stats = FilterKernelStats{};
  switch (plan.mode) {
    case FilterPlan::Mode::kNumeric:
      if (col.type() == DataType::kInt64) {
        return DispatchNumeric<int64_t>(col, col.int_data(), rows, plan,
                                        stats);
      }
      return DispatchNumeric<double>(col, col.double_data(), rows, plan,
                                     stats);
    case FilterPlan::Mode::kStringCode:
      if (plan.op == CompareOp::kEq) {
        if (plan.code < 0) {
          // Absent term matches nothing; every chunk is skipped outright.
          if (stats) {
            stats->chunks_total = col.num_chunks();
            stats->chunks_skipped = col.num_chunks();
          }
          return std::vector<int32_t>{};
        }
        return ChunkedScan(
            col, rows,
            CodeEqPred{col.code_data(), col.validity_data(), plan.code},
            stats);
      }
      return ChunkedScan(
          col, rows,
          CodeNeqPred{col.code_data(), col.validity_data(), plan.code}, stats);
    case FilterPlan::Mode::kSubstring: {
      // Evaluate the substring predicate once per dictionary entry;
      // dictionaries are tiny relative to row counts, so this turns a
      // per-row substring search into a per-row byte load.
      const int32_t dict = col.dictionary_size();
      std::vector<uint8_t> match(static_cast<size_t>(dict), 0);
      int32_t min_match = std::numeric_limits<int32_t>::max();
      int32_t max_match = -1;
      for (int32_t code = 0; code < dict; ++code) {
        const std::string& entry = col.DictionaryEntry(code);
        bool hit = false;
        switch (plan.op) {
          case CompareOp::kContains:
            hit = Contains(entry, *plan.needle);
            break;
          case CompareOp::kStartsWith:
            hit = StartsWith(entry, *plan.needle);
            break;
          default:
            hit = EndsWith(entry, *plan.needle);
            break;
        }
        match[static_cast<size_t>(code)] = hit ? 1 : 0;
        if (hit) {
          min_match = std::min(min_match, code);
          max_match = std::max(max_match, code);
        }
      }
      if (max_match < 0) {
        if (stats) {
          stats->chunks_total = col.num_chunks();
          stats->chunks_skipped = col.num_chunks();
        }
        return std::vector<int32_t>{};
      }
      return ChunkedScan(col, rows,
                         DictBitmapPred{col.code_data(), col.validity_data(),
                                        match.data(), min_match, max_match},
                         stats);
    }
  }
  return Status::Internal("FilterRowsKernel: unreachable");
}

// ---------------------------------------------------------------------------
// Group-by.
// ---------------------------------------------------------------------------

namespace {

Status ValidateGroupSpec(const Table& table, const GroupSpec& spec) {
  if (spec.group_columns.empty()) {
    return Status::InvalidArgument("GroupAggregate: no group columns");
  }
  for (int c : spec.group_columns) {
    if (c < 0 || c >= table.num_columns()) {
      return Status::OutOfRange("GroupAggregate: group column " +
                                std::to_string(c));
    }
  }
  const bool needs_agg_column = spec.agg != AggFunc::kCount;
  if (needs_agg_column) {
    if (spec.agg_column < 0 || spec.agg_column >= table.num_columns()) {
      return Status::OutOfRange("GroupAggregate: agg column " +
                                std::to_string(spec.agg_column));
    }
    if (!IsNumericType(table.column(spec.agg_column)->type())) {
      return Status::TypeMismatch(
          std::string(AggFuncName(spec.agg)) + " over non-numeric column '" +
          table.column(spec.agg_column)->name() + "'");
    }
  }
  return Status::OK();
}

void FillGroupHeader(const Table& table, const GroupSpec& spec,
                     GroupedResult* result) {
  result->spec = spec;
  for (int c : spec.group_columns) {
    result->key_names.push_back(table.column(c)->name());
  }
  if (spec.agg == AggFunc::kCount) {
    result->agg_name = "COUNT(*)";
  } else {
    result->agg_name = std::string(AggFuncName(spec.agg)) + "(" +
                       table.column(spec.agg_column)->name() + ")";
  }
}

/// Aggregates one group's member rows (already in selection order). This is
/// the scalar reference's per-group loop verbatim; both paths share it so
/// accumulation order — and therefore every SUM/AVG bit — is identical.
void AggregateGroup(const Column& agg_col, AggFunc agg, Group* g) {
  if (agg == AggFunc::kCount) {
    g->aggregate = static_cast<double>(g->rows.size());
    g->agg_valid = true;
    return;
  }
  double acc = 0.0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  int64_t n = 0;
  for (int32_t r : g->rows) {
    if (agg_col.IsNull(r)) continue;
    double v = agg_col.AsDoubleOrNan(r);
    acc += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    ++n;
  }
  g->agg_valid = (n > 0);
  if (!g->agg_valid) return;
  switch (agg) {
    case AggFunc::kSum:
      g->aggregate = acc;
      break;
    case AggFunc::kMin:
      g->aggregate = mn;
      break;
    case AggFunc::kMax:
      g->aggregate = mx;
      break;
    case AggFunc::kAvg:
      g->aggregate = acc / static_cast<double>(n);
      break;
    case AggFunc::kCount:
      break;
  }
}

/// Kernel-side aggregation of one group. Performs exactly the operations
/// AggregateGroup performs on the accumulators the requested aggregate
/// reads — same member order, same adds on the same single accumulator,
/// same std::min/std::max expressions — so every result bit matches the
/// scalar reference. It only hoists the per-row type dispatch and validity
/// test out of the loop (raw array + validity-byte accesses instead of
/// IsNull/AsDoubleOrNan calls) and skips the accumulators the aggregate
/// never reads, neither of which touches the float sequence that is kept.
void AggregateGroupKernel(const Column& agg_col, AggFunc agg, Group* g) {
  if (agg == AggFunc::kCount) {
    g->aggregate = static_cast<double>(g->rows.size());
    g->agg_valid = true;
    return;
  }
  const uint8_t* valid = agg_col.validity_data();
  const bool is_int = agg_col.type() == DataType::kInt64;
  const int64_t* ints = agg_col.int_data();
  const double* dbls = agg_col.double_data();
  int64_t n = 0;
  double out = 0.0;
  switch (agg) {
    case AggFunc::kSum:
    case AggFunc::kAvg: {
      double acc = 0.0;
      if (is_int) {
        for (int32_t r : g->rows) {
          if (!valid[r]) continue;
          acc += static_cast<double>(ints[r]);
          ++n;
        }
      } else {
        for (int32_t r : g->rows) {
          if (!valid[r]) continue;
          acc += dbls[r];
          ++n;
        }
      }
      if (n > 0) {
        out = agg == AggFunc::kSum ? acc : acc / static_cast<double>(n);
      }
      break;
    }
    case AggFunc::kMin: {
      double mn = std::numeric_limits<double>::infinity();
      if (is_int) {
        for (int32_t r : g->rows) {
          if (!valid[r]) continue;
          mn = std::min(mn, static_cast<double>(ints[r]));
          ++n;
        }
      } else {
        for (int32_t r : g->rows) {
          if (!valid[r]) continue;
          mn = std::min(mn, dbls[r]);
          ++n;
        }
      }
      out = mn;
      break;
    }
    case AggFunc::kMax: {
      double mx = -std::numeric_limits<double>::infinity();
      if (is_int) {
        for (int32_t r : g->rows) {
          if (!valid[r]) continue;
          mx = std::max(mx, static_cast<double>(ints[r]));
          ++n;
        }
      } else {
        for (int32_t r : g->rows) {
          if (!valid[r]) continue;
          mx = std::max(mx, dbls[r]);
          ++n;
        }
      }
      out = mx;
      break;
    }
    case AggFunc::kCount:
      break;
  }
  g->agg_valid = (n > 0);
  if (g->agg_valid) g->aggregate = out;
}

/// Serial fused member-fill + aggregation over the whole selection in row
/// order. Visiting the selection front to back appends each group's
/// members in discovery order (exactly what the scalar reference's
/// per-group push_backs produce) and feeds every group accumulator the
/// same floating-point sequence as the per-group loops (AggregateGroup /
/// AggregateGroupKernel) — while the agg column is read in one sequential
/// sweep instead of one sparse gather pass per group, and the selection's
/// id array is read once instead of twice. Serial only: merging per-thread
/// partial sums would reassociate the adds and change SUM/AVG bits.
///
/// `row_ids` holds dense slots (resolved through `id_to_gid`) or final
/// group ids (`id_to_gid` empty); `cursors` is indexed by the same id
/// space and already points into each group's sized rows vector.
template <typename IdT>
void FillAndAggregate(const Column& agg_col, AggFunc agg,
                      const std::vector<int32_t>& rows, bool identity,
                      const std::vector<IdT>& row_ids, int32_t** cursors,
                      const std::vector<int32_t>& id_to_gid,
                      std::vector<Group>* groups) {
  const size_t n = rows.size();
  const uint8_t* valid = agg_col.validity_data();
  const int32_t* sel = rows.data();
  const IdT* ids = row_ids.data();
  const size_t id_space = id_to_gid.empty() ? groups->size() : id_to_gid.size();

  std::vector<double> acc(
      id_space, agg == AggFunc::kMin
                    ? std::numeric_limits<double>::infinity()
                    : agg == AggFunc::kMax
                          ? -std::numeric_limits<double>::infinity()
                          : 0.0);
  std::vector<int64_t> cnt(id_space, 0);

  auto for_each = [&](auto&& update) {
    if (identity) {
      for (size_t i = 0; i < n; ++i) {
        const size_t id = static_cast<size_t>(ids[i]);
        *cursors[id]++ = static_cast<int32_t>(i);
        if (valid[i]) update(id, static_cast<int64_t>(i));
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        const int32_t r = sel[i];
        const size_t id = static_cast<size_t>(ids[i]);
        *cursors[id]++ = r;
        if (valid[r]) update(id, static_cast<int64_t>(r));
      }
    }
  };
  auto drive = [&](const auto* data) {
    switch (agg) {
      case AggFunc::kSum:
      case AggFunc::kAvg:
        for_each([&](size_t g, int64_t r) {
          acc[g] += static_cast<double>(data[r]);
          ++cnt[g];
        });
        break;
      case AggFunc::kMin:
        for_each([&](size_t g, int64_t r) {
          acc[g] = std::min(acc[g], static_cast<double>(data[r]));
          ++cnt[g];
        });
        break;
      case AggFunc::kMax:
        for_each([&](size_t g, int64_t r) {
          acc[g] = std::max(acc[g], static_cast<double>(data[r]));
          ++cnt[g];
        });
        break;
      case AggFunc::kCount:
        break;  // handled by the caller, never reaches here
    }
  };
  if (agg_col.type() == DataType::kInt64) {
    drive(agg_col.int_data());
  } else {
    drive(agg_col.double_data());
  }

  for (size_t id = 0; id < id_space; ++id) {
    const int32_t gid =
        id_to_gid.empty() ? static_cast<int32_t>(id) : id_to_gid[id];
    if (gid < 0) continue;
    Group& grp = (*groups)[static_cast<size_t>(gid)];
    grp.agg_valid = cnt[id] > 0;
    if (!grp.agg_valid) continue;
    grp.aggregate = agg == AggFunc::kAvg
                        ? acc[id] / static_cast<double>(cnt[id])
                        : acc[id];
  }
}

void SortGroupsByKey(std::vector<Group>* groups) {
  std::sort(groups->begin(), groups->end(),
            [](const Group& a, const Group& b) {
              for (size_t i = 0; i < a.keys.size() && i < b.keys.size(); ++i) {
                if (ValueLess(a.keys[i], b.keys[i])) return true;
                if (ValueLess(b.keys[i], a.keys[i])) return false;
              }
              return false;
            });
}

/// Dense single-column fast path: when the lone group column is a string
/// (slots are dictionary codes) or an int64 with a small, exactly-
/// representable global range (slots are offsets from the minimum), the
/// row→group map is direct addressing — no hashing at all. Slot order
/// differs from row-encounter order, but every pair of distinct keys on
/// these paths is strictly ordered by ValueLess (distinct strings compare
/// lexicographically; distinct in-range ints stay distinct as doubles), so
/// the final sort-by-key fully determines the output and matches the scalar
/// reference exactly. Doubles never take this path: -0.0/0.0 and NaN bit
/// patterns form ValueLess ties where pre-sort (discovery) order matters.
/// `identity_sel` marks a selection known to be 0..n-1, which lets pass 1
/// drop the selection indirection and run as a pure SIMD-friendly sweep
/// over the column arrays. On success `row_ids` holds each row's dense
/// SLOT (not group id) — the caller resolves slots through `slot_to_gid`
/// (-1 for unoccupied slots), which avoids a whole remap pass over the
/// selection — and `group_counts` holds each emitted group's member-row
/// count (indexed by group id), so the member vectors can be sized without
/// another counting pass.
bool TryDenseSingleColumn(const Table& table, const GroupSpec& spec,
                          const std::vector<int32_t>& rows, ThreadPool* pool,
                          bool identity_sel, std::vector<uint16_t>* row_ids,
                          std::vector<Group>* groups,
                          std::vector<int32_t>* group_counts,
                          std::vector<int32_t>* slot_to_gid) {
  constexpr int64_t kDenseSlotLimit = int64_t{1} << 16;
  constexpr int64_t kExactInt = int64_t{1} << 53;  // doubles stay exact here
  const Column& col = *table.column(spec.group_columns[0]);
  const size_t n = rows.size();
  const int32_t* sel = rows.data();
  const uint8_t* valid = col.validity_data();

  int64_t slots = 0;   // slot 0 is reserved for null keys
  int64_t base = 0;    // int path: slot = value - base + 1
  if (col.type() == DataType::kString) {
    slots = static_cast<int64_t>(col.dictionary_size()) + 1;
    if (slots > kDenseSlotLimit) return false;
  } else if (col.type() == DataType::kInt64) {
    int64_t mn = std::numeric_limits<int64_t>::max();
    int64_t mx = std::numeric_limits<int64_t>::min();
    for (const ColumnChunkStats& cs : col.chunk_stats()) {
      mn = std::min(mn, cs.min_int);
      mx = std::max(mx, cs.max_int);
    }
    if (mn > mx) {
      slots = 1;  // all-null column
    } else {
      if (mn < -kExactInt || mx > kExactInt) return false;
      const int64_t range = mx - mn;  // < 2^54, no overflow
      if (range + 2 > kDenseSlotLimit) return false;
      slots = range + 2;
      base = mn;
    }
  } else {
    return false;
  }
  row_ids->resize(n);  // sized here, past every cheap early-out above

  // Pass 1: slot per selected row. Writes are disjoint per index, so fixed
  // 64Ki-row partitions can run on the pool.
  auto fill = [&](int64_t lo, int64_t hi) {
    uint16_t* gid = row_ids->data();
    if (col.type() == DataType::kString) {
      const int32_t* codes = col.code_data();
      if (identity_sel) {
        for (int64_t i = lo; i < hi; ++i) {
          gid[i] = valid[i] ? static_cast<uint16_t>(codes[i] + 1) : 0;
        }
      } else {
        for (int64_t i = lo; i < hi; ++i) {
          const int32_t r = sel[i];
          gid[i] = valid[r] ? static_cast<uint16_t>(codes[r] + 1) : 0;
        }
      }
    } else {
      const int64_t* ints = col.int_data();
      if (identity_sel) {
        for (int64_t i = lo; i < hi; ++i) {
          gid[i] = valid[i] ? static_cast<uint16_t>(ints[i] - base + 1) : 0;
        }
      } else {
        for (int64_t i = lo; i < hi; ++i) {
          const int32_t r = sel[i];
          gid[i] = valid[r] ? static_cast<uint16_t>(ints[r] - base + 1) : 0;
        }
      }
    }
  };
  constexpr int64_t kPartitionRows = int64_t{1} << 16;
  const int64_t num_parts =
      n == 0 ? 0
             : (static_cast<int64_t>(n) + kPartitionRows - 1) / kPartitionRows;
  if (pool != nullptr && num_parts > 1) {
    pool->ParallelFor(static_cast<int>(num_parts), [&](int p) {
      const int64_t lo = static_cast<int64_t>(p) * kPartitionRows;
      fill(lo, std::min<int64_t>(static_cast<int64_t>(n),
                                 lo + kPartitionRows));
    });
  } else {
    fill(0, static_cast<int64_t>(n));
  }

  // Pass 2 (serial): compact occupied slots into group indices, in slot
  // order, and emit the group keys. Rows keep their slot ids; the caller
  // resolves them through slot_to_gid instead of paying a remap pass.
  std::vector<int32_t> slot_count(static_cast<size_t>(slots), 0);
  for (size_t i = 0; i < n; ++i) {
    ++slot_count[static_cast<size_t>((*row_ids)[i])];
  }
  slot_to_gid->assign(static_cast<size_t>(slots), -1);
  for (int64_t s = 0; s < slots; ++s) {
    if (slot_count[static_cast<size_t>(s)] == 0) continue;
    (*slot_to_gid)[static_cast<size_t>(s)] =
        static_cast<int32_t>(groups->size());
    Group g;
    if (s == 0) {
      g.keys.push_back(Value::Null());
    } else if (col.type() == DataType::kString) {
      g.keys.push_back(Value(col.DictionaryEntry(static_cast<int32_t>(s - 1))));
    } else {
      g.keys.push_back(Value(base + s - 1));
    }
    groups->push_back(std::move(g));
    group_counts->push_back(slot_count[static_cast<size_t>(s)]);
  }
  return true;
}

/// One partition's open-addressing table: composite-key hash → local group
/// id, with exact keys stored flat for collision resolution (the same
/// scheme as the scalar reference).
struct LocalGroupTable {
  std::vector<int32_t> slot_group;
  std::vector<uint64_t> slot_hash;
  std::vector<uint64_t> group_hash;   // per local group
  std::vector<int64_t> key_storage;   // k cell keys per local group, flat
  std::vector<int32_t> first_row;     // row id of the group's first member
  std::vector<int32_t> group_count;   // member rows per local group
  size_t capacity = 0;
};

/// Multi-column (or non-dense) path: fixed-size partitions of the selection
/// build local tables (parallel when a pool is given), then a serial merge
/// in partition order assigns global group ids. Visiting partitions 0..P-1
/// and, inside each, local groups in local-discovery order enumerates keys
/// exactly in global row-encounter order — a key's global first occurrence
/// lies in the earliest partition containing it, and local discovery order
/// within that partition is encounter order — so the pre-sort group order
/// (and with it every tie-breaking detail of the final sort) matches the
/// scalar reference at any thread count.
void HashAssignGroups(const Table& table, const GroupSpec& spec,
                      const std::vector<int32_t>& rows, ThreadPool* pool,
                      std::vector<int32_t>* row_gid,
                      std::vector<Group>* groups,
                      std::vector<int32_t>* group_counts) {
  const size_t n = rows.size();
  const size_t k = spec.group_columns.size();
  const int32_t* sel = rows.data();
  row_gid->resize(n);

  std::vector<const Column*> key_cols(k);
  for (size_t i = 0; i < k; ++i) {
    key_cols[i] = table.column(spec.group_columns[i]).get();
  }

  constexpr int64_t kPartitionRows = int64_t{1} << 16;
  const int64_t num_parts =
      n == 0 ? 0
             : (static_cast<int64_t>(n) + kPartitionRows - 1) / kPartitionRows;
  std::vector<LocalGroupTable> locals(static_cast<size_t>(num_parts));

  auto build_partition = [&](int p) {
    LocalGroupTable& local = locals[static_cast<size_t>(p)];
    const int64_t lo = static_cast<int64_t>(p) * kPartitionRows;
    const int64_t hi =
        std::min<int64_t>(static_cast<int64_t>(n), lo + kPartitionRows);
    local.capacity = 64;
    local.slot_group.assign(local.capacity, -1);
    local.slot_hash.assign(local.capacity, 0);
    size_t mask = local.capacity - 1;

    auto grow = [&local, &mask]() {
      local.capacity *= 2;
      mask = local.capacity - 1;
      local.slot_group.assign(local.capacity, -1);
      local.slot_hash.assign(local.capacity, 0);
      for (size_t g = 0; g < local.group_hash.size(); ++g) {
        size_t pos = static_cast<size_t>(local.group_hash[g]) & mask;
        while (local.slot_group[pos] >= 0) pos = (pos + 1) & mask;
        local.slot_group[pos] = static_cast<int32_t>(g);
        local.slot_hash[pos] = local.group_hash[g];
      }
    };

    int64_t row_key_buf[4];
    std::vector<int64_t> row_key_vec;
    int64_t* row_key = row_key_buf;
    if (k > 4) {
      row_key_vec.resize(k);
      row_key = row_key_vec.data();
    }

    for (int64_t i = lo; i < hi; ++i) {
      const int32_t r = sel[i];
      uint64_t hash;
      if (k == 1) {
        row_key[0] = key_cols[0]->CellKey(r);
        hash = Mix64(static_cast<uint64_t>(row_key[0]));
      } else {
        hash = 0x9E3779B97F4A7C15ULL;
        for (size_t j = 0; j < k; ++j) {
          row_key[j] = key_cols[j]->CellKey(r);
          hash = HashCombine(hash, static_cast<uint64_t>(row_key[j]));
        }
      }

      size_t pos = static_cast<size_t>(hash) & mask;
      int32_t group = -1;
      while (local.slot_group[pos] >= 0) {
        if (local.slot_hash[pos] == hash) {
          const int64_t* stored =
              local.key_storage.data() +
              static_cast<size_t>(local.slot_group[pos]) * k;
          bool equal = true;
          for (size_t j = 0; j < k; ++j) {
            if (stored[j] != row_key[j]) {
              equal = false;
              break;
            }
          }
          if (equal) {
            group = local.slot_group[pos];
            break;
          }
        }
        pos = (pos + 1) & mask;
      }
      if (group < 0) {
        group = static_cast<int32_t>(local.group_hash.size());
        local.slot_group[pos] = group;
        local.slot_hash[pos] = hash;
        local.group_hash.push_back(hash);
        local.key_storage.insert(local.key_storage.end(), row_key,
                                 row_key + k);
        local.first_row.push_back(r);
        local.group_count.push_back(0);
        if (local.group_hash.size() * 4 > local.capacity * 3) grow();
      }
      ++local.group_count[static_cast<size_t>(group)];
      (*row_gid)[static_cast<size_t>(i)] = group;
    }
  };

  if (pool != nullptr && num_parts > 1) {
    pool->ParallelFor(static_cast<int>(num_parts), build_partition);
  } else {
    for (int64_t p = 0; p < num_parts; ++p) {
      build_partition(static_cast<int>(p));
    }
  }

  // Serial merge in fixed partition order (see the function comment for why
  // this reproduces row-encounter discovery order).
  size_t total_local = 0;
  for (const LocalGroupTable& local : locals) {
    total_local += local.group_hash.size();
  }
  size_t capacity = 64;
  while (capacity * 3 < total_local * 4 + 4) capacity *= 2;
  std::vector<int32_t> slot_group(capacity, -1);
  std::vector<uint64_t> slot_hash(capacity);
  std::vector<int64_t> key_storage;
  key_storage.reserve(total_local * k);
  const size_t mask = capacity - 1;

  std::vector<std::vector<int32_t>> local_to_global(
      static_cast<size_t>(num_parts));
  for (int64_t p = 0; p < num_parts; ++p) {
    LocalGroupTable& local = locals[static_cast<size_t>(p)];
    const size_t local_groups = local.group_hash.size();
    local_to_global[static_cast<size_t>(p)].resize(local_groups);
    for (size_t lg = 0; lg < local_groups; ++lg) {
      const uint64_t hash = local.group_hash[lg];
      const int64_t* keys = local.key_storage.data() + lg * k;
      size_t pos = static_cast<size_t>(hash) & mask;
      int32_t group = -1;
      while (slot_group[pos] >= 0) {
        if (slot_hash[pos] == hash) {
          const int64_t* stored =
              key_storage.data() + static_cast<size_t>(slot_group[pos]) * k;
          bool equal = true;
          for (size_t j = 0; j < k; ++j) {
            if (stored[j] != keys[j]) {
              equal = false;
              break;
            }
          }
          if (equal) {
            group = slot_group[pos];
            break;
          }
        }
        pos = (pos + 1) & mask;
      }
      if (group < 0) {
        group = static_cast<int32_t>(groups->size());
        slot_group[pos] = group;
        slot_hash[pos] = hash;
        key_storage.insert(key_storage.end(), keys, keys + k);
        Group g;
        g.keys.reserve(k);
        for (int c : spec.group_columns) {
          g.keys.push_back(table.column(c)->GetValue(local.first_row[lg]));
        }
        groups->push_back(std::move(g));
        group_counts->push_back(0);
      }
      (*group_counts)[static_cast<size_t>(group)] += local.group_count[lg];
      local_to_global[static_cast<size_t>(p)][lg] = group;
    }
  }

  // Remap local ids to global ids, slice by slice.
  auto remap = [&](int p) {
    const std::vector<int32_t>& l2g = local_to_global[static_cast<size_t>(p)];
    const int64_t lo = static_cast<int64_t>(p) * kPartitionRows;
    const int64_t hi =
        std::min<int64_t>(static_cast<int64_t>(n), lo + kPartitionRows);
    for (int64_t i = lo; i < hi; ++i) {
      int32_t& gid = (*row_gid)[static_cast<size_t>(i)];
      gid = l2g[static_cast<size_t>(gid)];
    }
  };
  if (pool != nullptr && num_parts > 1) {
    pool->ParallelFor(static_cast<int>(num_parts), remap);
  } else {
    for (int64_t p = 0; p < num_parts; ++p) remap(static_cast<int>(p));
  }
}

}  // namespace

Result<GroupedResult> ScalarGroupAggregate(const Table& table,
                                           const std::vector<int32_t>& rows,
                                           const GroupSpec& spec) {
  ATENA_RETURN_IF_ERROR(ValidateGroupSpec(table, spec));
  GroupedResult result;
  FillGroupHeader(table, spec, &result);

  // Row→group assignment via an open-addressing hash table on a combined
  // 64-bit key hash. Slots store the owning group index; exact composite
  // keys live contiguously in `key_storage` (k int64s per group) and are
  // compared on every probe hit, so hash collisions across distinct keys
  // chain to new slots instead of merging groups. Group discovery order is
  // row-encounter order, and the deterministic final ordering comes from
  // the sort below.
  const size_t k = spec.group_columns.size();
  const Column* key_cols_buf[4];
  std::vector<const Column*> key_cols_vec;
  const Column** key_cols = key_cols_buf;
  if (k > 4) {
    key_cols_vec.resize(k);
    key_cols = key_cols_vec.data();
  }
  for (size_t i = 0; i < k; ++i) {
    key_cols[i] = table.column(spec.group_columns[i]).get();
  }

  size_t capacity = 64;
  std::vector<int32_t> slot_group(capacity, -1);
  std::vector<uint64_t> slot_hash(capacity);
  std::vector<uint64_t> group_hash;   // per group, for cheap rehashing
  std::vector<int64_t> key_storage;   // k cell keys per group, flat
  size_t mask = capacity - 1;

  auto grow = [&]() {
    capacity *= 2;
    mask = capacity - 1;
    slot_group.assign(capacity, -1);
    slot_hash.assign(capacity, 0);
    for (size_t g = 0; g < group_hash.size(); ++g) {
      size_t pos = static_cast<size_t>(group_hash[g]) & mask;
      while (slot_group[pos] >= 0) pos = (pos + 1) & mask;
      slot_group[pos] = static_cast<int32_t>(g);
      slot_hash[pos] = group_hash[g];
    }
  };

  int64_t row_key_buf[4];
  std::vector<int64_t> row_key_vec;
  int64_t* row_key = row_key_buf;
  if (k > 4) {
    row_key_vec.resize(k);
    row_key = row_key_vec.data();
  }

  for (int32_t r : rows) {
    uint64_t hash;
    if (k == 1) {
      row_key[0] = key_cols[0]->CellKey(r);
      hash = Mix64(static_cast<uint64_t>(row_key[0]));
    } else {
      hash = 0x9E3779B97F4A7C15ULL;
      for (size_t i = 0; i < k; ++i) {
        row_key[i] = key_cols[i]->CellKey(r);
        hash = HashCombine(hash, static_cast<uint64_t>(row_key[i]));
      }
    }

    size_t pos = static_cast<size_t>(hash) & mask;
    int32_t group = -1;
    while (slot_group[pos] >= 0) {
      if (slot_hash[pos] == hash) {
        const int64_t* stored =
            key_storage.data() + static_cast<size_t>(slot_group[pos]) * k;
        bool equal = true;
        for (size_t i = 0; i < k; ++i) {
          if (stored[i] != row_key[i]) {
            equal = false;
            break;
          }
        }
        if (equal) {
          group = slot_group[pos];
          break;
        }
      }
      pos = (pos + 1) & mask;
    }
    if (group < 0) {
      group = static_cast<int32_t>(result.groups.size());
      slot_group[pos] = group;
      slot_hash[pos] = hash;
      group_hash.push_back(hash);
      key_storage.insert(key_storage.end(), row_key, row_key + k);
      Group g;
      g.keys.reserve(k);
      for (int c : spec.group_columns) {
        g.keys.push_back(table.column(c)->GetValue(r));
      }
      result.groups.push_back(std::move(g));
      if (result.groups.size() * 4 > capacity * 3) grow();
    }
    result.groups[static_cast<size_t>(group)].rows.push_back(r);
  }

  const Column* agg_col = spec.agg == AggFunc::kCount
                              ? nullptr
                              : table.column(spec.agg_column).get();
  for (Group& g : result.groups) {
    AggregateGroup(agg_col == nullptr ? *table.column(spec.group_columns[0])
                                      : *agg_col,
                   spec.agg, &g);
  }

  SortGroupsByKey(&result.groups);
  return result;
}

Result<GroupedResult> GroupAggregateKernel(const Table& table,
                                           const std::vector<int32_t>& rows,
                                           const GroupSpec& spec,
                                           ThreadPool* pool) {
  ATENA_RETURN_IF_ERROR(ValidateGroupSpec(table, spec));
  GroupedResult result;
  FillGroupHeader(table, spec, &result);

  const size_t n = rows.size();
  const int32_t* sel = rows.data();
  // Per-row ids live in one of two vectors, sized by whichever assigner
  // runs: the dense path's slot space is capped at 2^16, so its slot ids
  // fit uint16_t — half the id traffic across the write, histogram and
  // member-fill passes — while the hash path keeps int32 group ids.
  std::vector<uint16_t> slot_ids;
  std::vector<int32_t> row_gid;

  // An identity selection (the root display, and the benchmark regime)
  // lets the dense assigner and the member fill drop the selection
  // indirection entirely. The check runs blockwise: branch-free inner
  // loops that vectorize, early exit between blocks.
  bool identity = static_cast<int64_t>(n) == table.num_rows();
  {
    constexpr size_t kCheckBlock = 4096;
    size_t i = 0;
    while (i < n && identity) {
      const size_t end = std::min(n, i + kCheckBlock);
      int id = 1;
      for (; i < end; ++i) {
        id &= static_cast<int>(sel[i] == static_cast<int32_t>(i));
      }
      identity = id != 0;
    }
  }

  std::vector<int32_t> counts;      // member rows per group id
  std::vector<int32_t> slot_to_gid; // dense path: slot → gid; empty for hash
  bool assigned = false;
  if (spec.group_columns.size() == 1) {
    assigned = TryDenseSingleColumn(table, spec, rows, pool, identity,
                                    &slot_ids, &result.groups, &counts,
                                    &slot_to_gid);
  }
  if (!assigned) {
    HashAssignGroups(table, spec, rows, pool, &row_gid, &result.groups,
                     &counts);
  }

  // Member vectors are sized up front from the assigner's counts and
  // filled through raw per-id cursors instead of size-checked push_backs.
  // Ids are group ids on the hash path and dense slots on the dense path —
  // indexing the cursor table by slot is what lets the dense path skip a
  // whole slot→gid remap pass over the selection.
  const size_t num_groups = result.groups.size();
  const size_t id_space =
      slot_to_gid.empty() ? num_groups : slot_to_gid.size();
  std::vector<int32_t*> cursors(id_space, nullptr);
  for (size_t g = 0; g < num_groups; ++g) {
    result.groups[g].rows.resize(static_cast<size_t>(counts[g]));
  }
  if (slot_to_gid.empty()) {
    for (size_t g = 0; g < num_groups; ++g) {
      cursors[g] = result.groups[g].rows.data();
    }
  } else {
    for (size_t s = 0; s < slot_to_gid.size(); ++s) {
      if (slot_to_gid[s] >= 0) {
        cursors[s] =
            result.groups[static_cast<size_t>(slot_to_gid[s])].rows.data();
      }
    }
  }

  // Member-row fill (selection order — same member order as the scalar
  // reference's discovery loop) and aggregation. COUNT(*) needs no second
  // look at the data. The other aggregates have two bit-identical
  // schedules: serial runs fuse the fill with one selection-order sweep of
  // the agg column (FillAndAggregate — each group's accumulator still sees
  // its members in exactly rows-vector order, but the column is read
  // sequentially instead of one gather pass per group); pooled runs fill
  // first and then parallelize over group blocks, since groups are
  // independent and the per-group loop preserves the same accumulation
  // order at any thread count.
  const bool plain_fill =
      spec.agg == AggFunc::kCount || (pool != nullptr && num_groups > 256);
  if (plain_fill) {
    auto fill_plain = [&](const auto* ids) {
      if (identity) {
        for (size_t i = 0; i < n; ++i) {
          *cursors[static_cast<size_t>(ids[i])]++ = static_cast<int32_t>(i);
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          *cursors[static_cast<size_t>(ids[i])]++ = sel[i];
        }
      }
    };
    if (slot_to_gid.empty()) {
      fill_plain(row_gid.data());
    } else {
      fill_plain(slot_ids.data());
    }
  }
  if (spec.agg == AggFunc::kCount) {
    for (Group& g : result.groups) {
      g.aggregate = static_cast<double>(g.rows.size());
      g.agg_valid = true;
    }
  } else if (plain_fill) {
    const Column& agg_ref = *table.column(spec.agg_column);
    constexpr size_t kGroupBlock = 256;
    const size_t num_blocks = (num_groups + kGroupBlock - 1) / kGroupBlock;
    pool->ParallelFor(static_cast<int>(num_blocks), [&](int b) {
      const size_t lo = static_cast<size_t>(b) * kGroupBlock;
      const size_t hi = std::min(num_groups, lo + kGroupBlock);
      for (size_t g = lo; g < hi; ++g) {
        AggregateGroupKernel(agg_ref, spec.agg, &result.groups[g]);
      }
    });
  } else if (slot_to_gid.empty()) {
    FillAndAggregate(*table.column(spec.agg_column), spec.agg, rows, identity,
                     row_gid, cursors.data(), slot_to_gid, &result.groups);
  } else {
    FillAndAggregate(*table.column(spec.agg_column), spec.agg, rows, identity,
                     slot_ids, cursors.data(), slot_to_gid, &result.groups);
  }

  SortGroupsByKey(&result.groups);
  return result;
}

}  // namespace atena
