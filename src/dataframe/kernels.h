#ifndef ATENA_DATAFRAME_KERNELS_H_
#define ATENA_DATAFRAME_KERNELS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "dataframe/ops.h"
#include "dataframe/table.h"

namespace atena {

class ThreadPool;

/// Chunk-level accounting of one FilterRowsKernel call, for benchmarks and
/// tests. A chunk is "skipped" when its zone map proves no selected row can
/// match, and "all-match" when it proves every selected row matches (those
/// rows are emitted without per-row tests). The remainder are "scanned".
struct FilterKernelStats {
  int64_t chunks_total = 0;
  int64_t chunks_skipped = 0;
  int64_t chunks_all_match = 0;
  int64_t chunks_scanned = 0;

  double skip_rate() const {
    return chunks_total == 0 ? 0.0
                             : static_cast<double>(chunks_skipped) /
                                   static_cast<double>(chunks_total);
  }
};

/// Chunked selection-vector filter. Walks `rows` chunk by chunk, consulting
/// the column's zone maps (ColumnChunkStats) to skip chunks that cannot
/// match and bulk-emit chunks that provably match, with a branch-light inner
/// loop (unconditional store + increment-by-match) for the rest. String
/// kEq/kNeq compare int32 dictionary ids against per-chunk code ranges;
/// kContains/kStartsWith/kEndsWith evaluate the predicate once per
/// dictionary entry and reduce the per-row test to a byte load. Validation,
/// error statuses, and output are identical to ScalarFilterRows
/// (bit-identical selection vectors, test-enforced); unsorted row lists
/// fall back to an exact flat scan.
Result<std::vector<int32_t>> FilterRowsKernel(const Table& table,
                                              const std::vector<int32_t>& rows,
                                              int column, CompareOp op,
                                              const Value& term,
                                              FilterKernelStats* stats = nullptr);

/// Retained scalar reference for FilterRows: the pre-kernel per-row scan.
/// Kept (not just for tests) as the semantic baseline the kernel must match
/// bit-for-bit; benchmarks report kernel speedup against it.
Result<std::vector<int32_t>> ScalarFilterRows(const Table& table,
                                              const std::vector<int32_t>& rows,
                                              int column, CompareOp op,
                                              const Value& term);

/// Partitioned group-by. The selection is cut into fixed-size contiguous
/// partitions (a function of row count only, never of thread count); each
/// partition builds a local open-addressing table (parallel on `pool` when
/// given, serial otherwise), and the locals are merged serially in partition
/// order — which reproduces the scalar reference's row-encounter discovery
/// order exactly. Member-row fill and aggregation run in selection order per
/// group, so SUM/AVG accumulate in the scalar order and the result is
/// bit-identical to ScalarGroupAggregate at any thread count. A dense
/// fast path covers single-column group-bys over dictionary codes (strings)
/// or small-range int64s.
Result<GroupedResult> GroupAggregateKernel(const Table& table,
                                           const std::vector<int32_t>& rows,
                                           const GroupSpec& spec,
                                           ThreadPool* pool = nullptr);

/// Retained scalar reference for GroupAggregate (single-threaded
/// row-encounter-order hash group-by).
Result<GroupedResult> ScalarGroupAggregate(const Table& table,
                                           const std::vector<int32_t>& rows,
                                           const GroupSpec& spec);

}  // namespace atena

#endif  // ATENA_DATAFRAME_KERNELS_H_
