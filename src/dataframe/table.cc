#include "dataframe/table.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/string_utils.h"

namespace atena {

Result<TablePtr> Table::Make(std::string name, std::vector<ColumnPtr> columns) {
  auto table = std::shared_ptr<Table>(new Table());
  table->name_ = std::move(name);
  std::unordered_set<std::string> seen;
  for (const auto& col : columns) {
    if (!col) return Status::InvalidArgument("null column");
    if (col->name().empty()) {
      return Status::InvalidArgument("column with empty name");
    }
    if (!seen.insert(col->name()).second) {
      return Status::AlreadyExists("duplicate column name '" + col->name() +
                                   "'");
    }
  }
  if (!columns.empty()) {
    table->num_rows_ = columns[0]->length();
    for (const auto& col : columns) {
      if (col->length() != table->num_rows_) {
        return Status::InvalidArgument(
            "column '" + col->name() + "' length mismatch: " +
            std::to_string(col->length()) + " vs " +
            std::to_string(table->num_rows_));
      }
    }
  }
  table->columns_ = std::move(columns);
  return TablePtr(table);
}

int Table::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i]->name() == name) return static_cast<int>(i);
  }
  return -1;
}

Result<TablePtr> Table::Take(const std::vector<int32_t>& rows,
                             std::string new_name) const {
  std::vector<ColumnPtr> out_columns;
  out_columns.reserve(columns_.size());
  for (const auto& col : columns_) {
    ColumnBuilder builder(col->name(), col->type());
    for (int32_t row : rows) {
      if (row < 0 || row >= num_rows_) {
        return Status::OutOfRange("Take: row id " + std::to_string(row) +
                                  " out of [0," + std::to_string(num_rows_) +
                                  ")");
      }
      if (col->IsNull(row)) {
        builder.AppendNull();
        continue;
      }
      Status append_status;
      switch (col->type()) {
        case DataType::kInt64:
          append_status = builder.AppendInt(col->GetInt(row));
          break;
        case DataType::kFloat64:
          append_status = builder.AppendDouble(col->GetDouble(row));
          break;
        case DataType::kString:
          append_status = builder.AppendString(col->GetString(row));
          break;
      }
      ATENA_RETURN_IF_ERROR(append_status);
    }
    out_columns.push_back(builder.Finish());
  }
  return Table::Make(std::move(new_name), std::move(out_columns));
}

std::string Table::ToString(int64_t max_rows) const {
  const int64_t shown = std::min(max_rows, num_rows_);
  // Column widths: max of header and shown cell widths, capped for sanity.
  std::vector<size_t> widths(columns_.size());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c]->name().size();
  }
  for (int64_t r = 0; r < shown; ++r) {
    cells[r].resize(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      cells[r][c] = columns_[c]->GetValue(r).ToString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  for (size_t c = 0; c < widths.size(); ++c) widths[c] = std::min<size_t>(widths[c], 32);

  std::ostringstream os;
  os << name_ << " [" << num_rows_ << " rows x " << columns_.size()
     << " cols]\n";
  for (size_t c = 0; c < columns_.size(); ++c) {
    os << PadRight(columns_[c]->name(), widths[c]) << (c + 1 < columns_.size() ? "  " : "");
  }
  os << "\n";
  for (int64_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      os << PadRight(cells[r][c], widths[c]) << (c + 1 < columns_.size() ? "  " : "");
    }
    os << "\n";
  }
  if (shown < num_rows_) {
    os << "... (" << (num_rows_ - shown) << " more rows)\n";
  }
  return os.str();
}

void TableBuilder::AddColumn(std::string name, DataType type) {
  builders_.emplace_back(std::move(name), type);
}

Status TableBuilder::AppendRow(const std::vector<Value>& cells) {
  if (cells.size() != builders_.size()) {
    return Status::InvalidArgument(
        "AppendRow: expected " + std::to_string(builders_.size()) +
        " cells, got " + std::to_string(cells.size()));
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    ATENA_RETURN_IF_ERROR(builders_[i].AppendValue(cells[i]));
  }
  ++num_rows_;
  return Status::OK();
}

Result<TablePtr> TableBuilder::Finish() {
  std::vector<ColumnPtr> columns;
  columns.reserve(builders_.size());
  for (auto& b : builders_) columns.push_back(b.Finish());
  num_rows_ = 0;
  return Table::Make(name_, std::move(columns));
}

}  // namespace atena
