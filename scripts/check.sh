#!/usr/bin/env bash
# Full verification sweep: the tier-1 build + test cycle, then the same
# suite again under AddressSanitizer (ATENA_SANITIZE=address) and
# UndefinedBehaviorSanitizer (ATENA_SANITIZE=undefined), and finally the
# concurrency-sensitive test binaries under ThreadSanitizer
# (ATENA_SANITIZE=thread) — all in separate build trees. Run from
# anywhere; builds land in <repo>/build, <repo>/build-asan,
# <repo>/build-ubsan and <repo>/build-tsan. Every ctest invocation
# carries a per-test timeout so a hung test fails the sweep instead of
# wedging it.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
test_timeout=600  # seconds per test binary

echo "== tier-1: configure + build + ctest =="
cmake -B "$repo/build" -S "$repo"
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs" \
  --timeout "$test_timeout"

echo "== asan: configure + build + ctest (ATENA_SANITIZE=address) =="
cmake -B "$repo/build-asan" -S "$repo" -DATENA_SANITIZE=address
cmake --build "$repo/build-asan" -j "$jobs"
ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs" \
  --timeout "$test_timeout"

echo "== ubsan: configure + build + ctest (ATENA_SANITIZE=undefined) =="
cmake -B "$repo/build-ubsan" -S "$repo" -DATENA_SANITIZE=undefined
cmake --build "$repo/build-ubsan" -j "$jobs"
# halt_on_error turns any UB report into a test failure rather than a log line.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir "$repo/build-ubsan" --output-on-failure -j "$jobs" \
    --timeout "$test_timeout"

echo "== tsan: configure + build + threaded tests (ATENA_SANITIZE=thread) =="
cmake -B "$repo/build-tsan" -S "$repo" -DATENA_SANITIZE=thread
cmake --build "$repo/build-tsan" -j "$jobs" \
  --target thread_pool_test parallel_trainer_test display_cache_test \
           checkpoint_test guardrails_test serve_test serve_faults_test \
           serve_journal_test index_test dataframe_test
# Only the binaries that actually spin up threads (the pool itself, the
# parallel trainer's stepping path, the shared display cache, the
# thread-crossing checkpoint resume, the guardrail fault-injection
# matrix with its multi-threaded rollback/recovery runs, the serving
# runtime's parallel environment stepping plus its fault-injection
# matrix — quarantine/deadline/shed/reload under worker threads — the
# display-vector index exercised through the multi-threaded serve path
# and the shared notebook store, and the parallel group-by kernels) —
# TSan's ~10x slowdown makes a full suite sweep disproportionate.
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir "$repo/build-tsan" --output-on-failure -j "$jobs" \
    --timeout "$test_timeout" \
    -R 'thread_pool_test|parallel_trainer_test|display_cache_test|checkpoint_test|guardrails_test|serve_test|serve_faults_test|serve_journal_test|index_test|dataframe_test'

echo "== all checks passed =="
