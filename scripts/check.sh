#!/usr/bin/env bash
# Full verification sweep: the tier-1 build + test cycle, then the same
# suite again under AddressSanitizer (ATENA_SANITIZE=address) and
# UndefinedBehaviorSanitizer (ATENA_SANITIZE=undefined) in separate build
# trees. Run from anywhere; builds land in <repo>/build, <repo>/build-asan
# and <repo>/build-ubsan. Every ctest invocation carries a per-test
# timeout so a hung test fails the sweep instead of wedging it.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
test_timeout=600  # seconds per test binary

echo "== tier-1: configure + build + ctest =="
cmake -B "$repo/build" -S "$repo"
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs" \
  --timeout "$test_timeout"

echo "== asan: configure + build + ctest (ATENA_SANITIZE=address) =="
cmake -B "$repo/build-asan" -S "$repo" -DATENA_SANITIZE=address
cmake --build "$repo/build-asan" -j "$jobs"
ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs" \
  --timeout "$test_timeout"

echo "== ubsan: configure + build + ctest (ATENA_SANITIZE=undefined) =="
cmake -B "$repo/build-ubsan" -S "$repo" -DATENA_SANITIZE=undefined
cmake --build "$repo/build-ubsan" -j "$jobs"
# halt_on_error turns any UB report into a test failure rather than a log line.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir "$repo/build-ubsan" --output-on-failure -j "$jobs" \
    --timeout "$test_timeout"

echo "== all checks passed =="
