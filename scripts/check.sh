#!/usr/bin/env bash
# Full verification sweep: the tier-1 build + test cycle, then the same
# suite again under AddressSanitizer (ATENA_SANITIZE=address) in a separate
# build tree. Run from anywhere; builds land in <repo>/build and
# <repo>/build-asan.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build + ctest =="
cmake -B "$repo/build" -S "$repo"
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

echo "== asan: configure + build + ctest (ATENA_SANITIZE=address) =="
cmake -B "$repo/build-asan" -S "$repo" -DATENA_SANITIZE=address
cmake --build "$repo/build-asan" -j "$jobs"
ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs"

echo "== all checks passed =="
